// Package sim implements the cycle-based simulation engine the paper's
// evaluation runs on (PeerSim's cycle model, §4.5): in each cycle every
// node updates its view through the membership protocol and then runs
// one slicing protocol step, with message exchanges atomic by default.
//
// Artificial concurrency (§4.5.2) is reproduced exactly as described:
// each swap exchange is an "overlapping message" with a configurable
// probability. Overlapping exchanges select their partner and capture
// their payload from a snapshot of the state at the beginning of the
// cycle and are delivered in random order at the end of the cycle, so
// their information can be stale by the time it lands — producing the
// unsuccessful swaps of Fig. 4(c). Non-overlapping exchanges read live
// state and complete immediately ("the view is up-to-date when a message
// is sent").
//
// Churn (§3.3) is applied at the start of each cycle: leavers vanish
// (crash and departure are indistinguishable), joiners arrive with a
// bootstrap view of random live nodes, a fresh random value (ordering)
// or an empty estimator (ranking).
//
// # Engine core
//
// Node state is laid out struct-of-arrays: the engine holds parallel
// slices addressed by a dense arena index ("slot") — identifiers (ids),
// value-stored protocol instances (ons/rns, one per protocol kind),
// view headers (views) and cached self entries (self) — plus one
// ID→slot table ([]int32, indexed directly by the monotonically
// assigned core.ID). View storage itself lives outside the headers, in
// one flat backing array indexed by slot*ViewSize with a packed ID
// mirror (view.Arena): the compute and commit halves of a gossip round,
// the per-cycle SDM/GDM measurement and churn's swap-delete all stream
// contiguous memory instead of chasing per-node heap objects. Every
// hot-path lookup — message delivery, state reads, snapshots, sampling,
// measurement — is a bounds check and a slice index: no hashing, no
// pointer chasing, no interface dispatch (the engine calls the concrete
// ordering/ranking APIs and inlines the Cyclon/Newscast exchange
// semantics over the arena directly). Churn is O(1) amortized per node:
// leavers are swap-deleted (the vacating view is rebound onto the freed
// arena block), and the attribute-ordered membership is maintained
// incrementally by a single merge pass per churn event. The engine
// scales to populations of 10⁶ nodes; see the scale-* scenario family,
// BenchmarkEngineScaling, and MemReport for the bytes/node budget.
//
// # Parallel cycles
//
// A cycle executes as a sequence of compute/commit rounds instead of a
// serial walk over a node permutation, so one run uses every core
// (Config.Workers) while remaining bit-identical at any worker count:
//
//   - Randomness is counter-based: each node's draws in a cycle come
//     from its own splitmix64 stream over (seed, node ID, cycle, phase)
//     — see rng.go — so no draw depends on iteration order. Churn,
//     bootstrap sampling and the overlapping-delivery shuffle stay on
//     the engine's serial stream.
//   - The membership phase runs partner selection on all nodes
//     concurrently against their own views, freezes every view, then
//     commits merges per view owner in initiator-slot order.
//   - The protocol phase computes every initiator's exchange (partner
//     choice, outgoing payloads) in parallel against a frozen
//     start-of-phase coordinate snapshot, then applies deliveries in a
//     deterministic slot-ordered commit. Non-overlapping ordering
//     exchanges re-validate the swap predicate on live values at commit
//     — the atomic model's "the view is up-to-date when a message is
//     sent" — so the atomic cycle model still produces zero
//     unsuccessful swaps; overlapping exchanges (Config.Concurrency)
//     keep their stale-delivery semantics. Ranking's one-way updates
//     additionally commit in parallel (per-target staging; see
//     protocolRound), since which estimator absorbs which update is
//     fixed by the compute phase alone.
//   - Measurements reduce over fixed-size chunks whose partial sums are
//     added in chunk order, keeping floating-point totals independent
//     of the worker count.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/gossipkit/slicing/internal/churn"
	"github.com/gossipkit/slicing/internal/core"
	"github.com/gossipkit/slicing/internal/dist"
	"github.com/gossipkit/slicing/internal/fault"
	"github.com/gossipkit/slicing/internal/metrics"
	"github.com/gossipkit/slicing/internal/ordering"
	"github.com/gossipkit/slicing/internal/proto"
	"github.com/gossipkit/slicing/internal/ranking"
	"github.com/gossipkit/slicing/internal/telemetry"
	"github.com/gossipkit/slicing/internal/view"
)

// ProtocolKind selects the slicing protocol under simulation.
type ProtocolKind int

// Available protocols.
const (
	// Ordering runs JK or mod-JK (§4), depending on Config.Policy.
	Ordering ProtocolKind = iota + 1
	// Ranking runs the rank-estimation protocol (§5).
	Ranking
)

// String implements fmt.Stringer.
func (k ProtocolKind) String() string {
	switch k {
	case Ordering:
		return "ordering"
	case Ranking:
		return "ranking"
	default:
		return fmt.Sprintf("protocol(%d)", int(k))
	}
}

// MembershipKind selects the peer-sampling substrate.
type MembershipKind int

// Available membership substrates.
const (
	// CyclonViews is the Cyclon variant of §4.3.2 (the paper's default).
	CyclonViews MembershipKind = iota + 1
	// NewscastViews is the Newscast-like substrate (original JK).
	NewscastViews
	// UniformOracle re-draws views uniformly at random every cycle
	// (§5.3.2's idealized sampler).
	UniformOracle
)

// String implements fmt.Stringer.
func (k MembershipKind) String() string {
	switch k {
	case CyclonViews:
		return "cyclon"
	case NewscastViews:
		return "newscast"
	case UniformOracle:
		return "uniform"
	default:
		return fmt.Sprintf("membership(%d)", int(k))
	}
}

// EstimatorKind selects the ranking estimator.
type EstimatorKind int

// Available estimators.
const (
	// CounterEstimator is the unbounded ℓ/g counter of Fig. 5.
	CounterEstimator EstimatorKind = iota + 1
	// WindowEstimator is the sliding-window variant of §5.3.4.
	WindowEstimator
)

// Config parameterizes a simulation. The zero value is not runnable; see
// the field comments for required entries.
type Config struct {
	// N is the initial system size.
	N int
	// Slices is the number of equal slices (ignored when Partition is
	// set explicitly).
	Slices int
	// Partition overrides Slices with custom boundaries.
	Partition *core.Partition
	// ViewSize is the gossip view capacity c.
	ViewSize int
	// Protocol selects ordering (§4) or ranking (§5).
	Protocol ProtocolKind
	// Policy selects JK or mod-JK when Protocol == Ordering.
	Policy ordering.Policy
	// Membership selects the peer-sampling substrate. Default CyclonViews.
	Membership MembershipKind
	// Estimator selects the ranking estimator. Default CounterEstimator.
	Estimator EstimatorKind
	// WindowSize is the sliding-window size W (WindowEstimator only).
	WindowSize int
	// DisableViewScan turns off estimator feeding from view scans
	// (ranking ablation).
	DisableViewScan bool
	// DisableBoundaryBias makes both ranking targets random (ablation
	// of the Fig. 5 boundary-closest targeting).
	DisableBoundaryBias bool
	// Concurrency is the probability that a swap exchange is an
	// overlapping message (§4.5.2): 0 = the atomic cycle model, 0.5 =
	// the paper's "half concurrency", 1 = "full concurrency". An
	// overlapping exchange selects its partner from a cycle-start
	// snapshot ("the view might be out-of-date") and is delivered in
	// random order at the end of the cycle, where the swap predicate is
	// re-evaluated against live state — failed predicates are the
	// paper's unsuccessful swaps.
	Concurrency float64
	// StalePayloads additionally freezes the random value carried by an
	// overlapping swap request at its cycle-start snapshot instead of
	// refreshing it at delivery. This models a literal message-passing
	// reading of Fig. 2 under concurrency, where one-sided swaps
	// duplicate and lose random values (the drift extension experiment).
	// The paper's results correspond to the default (false): exchanges
	// execute on live values, only the selection is stale.
	StalePayloads bool
	// AttrDist draws the initial attribute values. Required.
	AttrDist dist.Source
	// Seed makes runs reproducible.
	Seed int64
	// Workers is the number of goroutines the engine spreads each
	// cycle's compute rounds across. 0 and 1 both mean single-threaded.
	// The worker count is purely a throughput knob: results are
	// bit-identical at any value (see the package comment), so it can be
	// tuned per machine without re-seeding anything.
	Workers int
	// Schedule and Pattern define churn; nil means a static system.
	Schedule churn.Schedule
	Pattern  churn.Pattern
	// Faults is the run's fault-injection plan (attribute drift,
	// byzantine misreporting, partition/heal, message chaos); nil means
	// an honest, well-behaved run. Injection draws come from the
	// fault-phase counter streams and the engine's serial stream, so a
	// faulted run stays bit-identical at any worker count. See faults.go.
	Faults *fault.Plan
	// RecordGDM additionally records the global disorder measure each
	// cycle (Fig. 4(a)).
	RecordGDM bool
	// Telemetry, when non-nil, exports per-cycle gauges (cycle, live
	// size, SDM, GDM) and per-phase wall-clock histograms to the
	// registry. Timing never touches the engine's RNG streams, so an
	// instrumented run is bit-identical to an uninstrumented one.
	Telemetry *telemetry.Registry
	// ReferenceKernels forces the straightforward reference
	// implementations of the protocol kernels — the scratch-based
	// two-pass view merge, the StateReader-dispatched O(c²) mod-JK rank
	// count, per-entry bootstrap inserts and the per-node measurement
	// scan — instead of the fused fast paths the engine runs by default.
	// The fast kernels are bit-identical by contract; this switch exists
	// so the equivalence suite can prove that on every config
	// (kernels_test.go). Purely a throughput knob: results never depend
	// on it.
	ReferenceKernels bool
}

// Config validation errors.
var (
	ErrConfigN        = errors.New("sim: N must be positive")
	ErrConfigView     = errors.New("sim: ViewSize must be positive")
	ErrConfigDist     = errors.New("sim: AttrDist is required")
	ErrConfigProtocol = errors.New("sim: unknown protocol")
	ErrConfigConc     = errors.New("sim: Concurrency must lie in [0,1]")
	ErrConfigWorkers  = errors.New("sim: Workers must be ≥ 0")
)

func (cfg *Config) validate() error {
	if cfg.N < 1 {
		return ErrConfigN
	}
	if cfg.Workers < 0 {
		return ErrConfigWorkers
	}
	if cfg.ViewSize < 1 {
		return ErrConfigView
	}
	if cfg.AttrDist == nil {
		return ErrConfigDist
	}
	if cfg.Concurrency < 0 || cfg.Concurrency > 1 {
		return ErrConfigConc
	}
	switch cfg.Protocol {
	case Ordering, Ranking:
	default:
		return ErrConfigProtocol
	}
	if cfg.Membership == 0 {
		cfg.Membership = CyclonViews
	}
	if cfg.Estimator == 0 {
		cfg.Estimator = CounterEstimator
	}
	if cfg.Protocol == Ordering && cfg.Policy == 0 {
		cfg.Policy = ordering.SelectMaxGain
	}
	if cfg.Estimator == WindowEstimator && cfg.WindowSize < 1 {
		return ranking.ErrWindow
	}
	if err := cfg.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// noSlot marks a departed (or never-assigned) ID in the slot table.
const noSlot = int32(-1)

// Engine is a running simulation. Not safe for concurrent use.
type Engine struct {
	cfg  Config
	part core.Partition
	rng  *rand.Rand

	// The node arena, struct-of-arrays: one entry per live node in each
	// of the parallel slices below, addressed by slot. Slots are stable
	// within a cycle; churn swap-deletes leavers and appends joiners, so
	// slot order changes only at churn boundaries.
	//
	// ids holds the node identifiers. Exactly one of ons/rns is in use
	// per run — protocol instances are stored BY VALUE, so a scan over
	// them streams memory instead of chasing a million heap pointers.
	// views holds the per-slot view headers; their entry storage is not
	// theirs but the slot's block of varena, so all view payloads of the
	// population form two contiguous arrays (entries + packed ID
	// mirror). self caches each node's SelfEntry (refreshed by
	// refreshSelfEntries; see there for the staleness contract).
	ids    []core.ID
	ons    []ordering.Node
	rns    []ranking.Node
	views  []*view.View
	self   []view.Entry
	varena *view.Arena
	// Dense per-slot mirrors of the ordering nodes' hot scalars
	// (ordering runs only; nil under ranking). An ordering.Node is
	// ~170 bytes, so any per-slot scan through the node array pulls one
	// cache line per node; the exchange compute, coordinate snapshot,
	// commit re-validation and GDM assignment read these 8-byte mirrors
	// instead. rs tracks each node's live random value (updated at the
	// single swap-delivery choke point), attrs its attribute (updated by
	// the fault plane's setAttrAt).
	rs    []float64
	attrs []core.Attr
	// newscast resolves the membership substrate's exchange semantics
	// once: partner = random (vs oldest), replies advertise self, merges
	// keep the freshest duplicate. The oracle substrate bypasses
	// exchanges entirely (oracleRound).
	newscast bool

	// slots maps core.ID → arena slot. IDs are assigned sequentially
	// from 1, so the table is indexed directly by ID — an ID lookup is a
	// bounds check and a slice load, never a hash. Departed IDs hold
	// noSlot. The table grows by one int32 per node ever created.
	slots []int32
	// members is the live membership in the attribute-based total order,
	// maintained incrementally: one merge pass per churn event (see
	// mergeMembers), zero sorts at steady state. It feeds the churn
	// patterns and the per-cycle SDM.
	members []core.Member
	nextID  core.ID
	cycle   int

	sdm       metrics.Series
	gdm       metrics.Series
	unsucc    metrics.Series // % unsuccessful swaps per cycle
	size      metrics.Series // live system size per cycle
	pollution metrics.Series // liar fraction of the targeted slice per cycle

	// Message counters (cumulative).
	Delivered MessageCounts

	prevReqReceived uint64
	prevFailed      uint64
	// Engine-side mirrors of the ordering Stats sums the per-cycle
	// unsuccessful-swap series needs: bumped at the swap-delivery choke
	// point (deliverSwap), so the fast measurement path reads two
	// counters instead of scanning a million Node structs every cycle.
	// Identical to the Stats sums by construction — deliverSwap is the
	// only ApplySwapRequest caller in the engine.
	recvTotal     uint64
	failRecvTotal uint64
	// Cumulative wall-clock nanoseconds per cycle phase; see
	// telemetry.go. Always on (four clock reads per cycle), exported
	// through Result so every perf artifact carries its own breakdown.
	phaseNS [phaseCount]int64

	// Fault-plane state; see faults.go. The salts are derived from the
	// run seed at construction, partNow/chaosNow cache the cycle's
	// active windows, lying tracks which IDs currently impersonate a
	// false attribute, and fc tallies every injection.
	saltDrift int64
	saltByz   int64
	saltPart  int64
	partNow   *fault.Partition
	chaosNow  *fault.Chaos
	lying     map[core.ID]struct{}
	fc        FaultCounts
	prevFC    FaultCounts

	// workers is the resolved compute-worker count (≥ 1); ws holds one
	// scratch block per worker. See parallel.go.
	workers int
	ws      []simWorker

	// tel is nil unless Config.Telemetry was set; see telemetry.go.
	tel *engineTel

	// Reusable per-cycle buffers. Outside the parallel rounds the engine
	// is single-threaded, and none of these escape a Step call, so reuse
	// keeps the hot path (snapshot, freeze, measure) allocation-free at
	// steady state. Buffers written inside parallel rounds are strictly
	// partitioned: every slot is written by exactly one worker.
	snapBuf     []float64 // per-slot phase-start coordinates
	believedBuf []int     // per-cycle believed slice indices, attr order
	// Slice-index cache for the fast measurement path (ordering runs):
	// sliceR[s] is the coordinate sliceIdx[s] was computed from (NaN =
	// never computed), so a converged node's partition lookup is one
	// float compare per cycle instead of a binary search. slotBelieved
	// stages the per-slot believed slice of the current measurement in
	// slot order before the members-order gather.
	sliceR       []float64
	sliceIdx     []int32
	slotBelieved []int32
	// coordTab is the ID-indexed coordinate snapshot handed to the fast
	// ordering tick (see proto.CoordTable): live IDs refreshed from
	// snapBuf each protocol round, departed IDs pinned at NaN by
	// removeNode, the growth tail NaN-initialized. One random load per
	// neighbor resolve instead of the slot-table double hop.
	coordTab    proto.CoordTable
	joinersBuf  []core.Member // joiners of the current churn event
	membersBuf  []core.Member // double buffer for the membership merge
	deferredBuf []deferredEnv
	// Membership-round buffers: the per-slot partner choice, the frozen
	// per-initiator payload windows (strided ViewSize+1 per slot — a
	// window carries the initiator's request on the way in and, once the
	// target has absorbed it, is reused for that initiator's reply on
	// the way back), per-slot self entries, and the counting-sorted
	// per-target initiator lists that give the commit its deterministic
	// order.
	memTarget []int32
	reqStore  []view.Entry
	reqLen    []int32
	selfSnap  []view.Entry
	initHead  []int32
	initPos   []int32
	initList  []int32
	// Protocol-round staging, unboxed per protocol: each ordering slot's
	// ticked swap target (0 = no request this cycle) with its frozen
	// payload and overlap flag; each ranking slot's two UPD targets
	// (stride 2, 0 = none) with their resolved destination slots.
	swapTo     []core.ID
	swapR      []float64
	swapAttr   []core.Attr
	overlapBuf []bool
	updTo      []core.ID
	rankDst    []int32
	// Measurement buffers: fixed-chunk partial sums plus the GDM rank
	// scratch (bucketHead backs the bucket sort of measureGDM).
	chunkSums  []float64
	alphaBuf   []int32
	rhoBuf     []int32
	rBuf       []float64
	idxBuf     []int32
	bucketBuf  []int32
	bucketHead []int32
	// sampler backs the engine-stream uniform draws (bootstrap views);
	// each worker carries its own for the oracle round.
	sampler sampler
}

// MessageCounts tallies delivered protocol messages by type, plus
// messages dropped because their destination had left.
type MessageCounts struct {
	ViewRequests uint64
	ViewReplies  uint64
	SwapRequests uint64
	SwapReplies  uint64
	RankUpdates  uint64
	Dropped      uint64
}

// Total returns all delivered messages.
func (m MessageCounts) Total() uint64 {
	return m.ViewRequests + m.ViewReplies + m.SwapRequests + m.SwapReplies + m.RankUpdates
}

// New builds a simulation engine and records the initial (cycle-0)
// measurements.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	part := core.MustEqual(1)
	if cfg.Partition != nil {
		part = *cfg.Partition
	} else if cfg.Slices > 0 {
		p, err := core.Equal(cfg.Slices)
		if err != nil {
			return nil, err
		}
		part = p
	} else {
		return nil, core.ErrNoSlices
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	e := &Engine{
		cfg:      cfg,
		part:     part,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		ids:      make([]core.ID, 0, cfg.N),
		views:    make([]*view.View, 0, cfg.N),
		self:     make([]view.Entry, 0, cfg.N),
		varena:   view.NewArena(cfg.ViewSize, cfg.N),
		newscast: cfg.Membership == NewscastViews,
		slots:    make([]int32, 1, cfg.N+1), // slot 0 is the unused ID 0
		workers:  workers,
		ws:       make([]simWorker, workers),
		sdm:      metrics.Series{Name: "sdm"},
		gdm:      metrics.Series{Name: "gdm"},
		unsucc:   metrics.Series{Name: "unsuccessful%"},
		size:     metrics.Series{Name: "n"},

		pollution: metrics.Series{Name: "pollution"},
		saltDrift: fault.DriftSalt(cfg.Seed),
		saltByz:   fault.ByzantineSalt(cfg.Seed),
		saltPart:  fault.PartitionSalt(cfg.Seed),
	}
	switch cfg.Protocol {
	case Ordering:
		e.ons = make([]ordering.Node, 0, cfg.N)
	case Ranking:
		e.rns = make([]ranking.Node, 0, cfg.N)
	}
	e.slots[0] = noSlot
	if cfg.Telemetry != nil {
		e.tel = newEngineTel(cfg.Telemetry)
	}
	for i := 0; i < cfg.N; i++ {
		attr := core.Attr(cfg.AttrDist.Sample(e.rng))
		if err := e.addNode(attr); err != nil {
			return nil, err
		}
	}
	// The one full membership sort of a run; churn events maintain the
	// order incrementally from here on.
	e.members = make([]core.Member, 0, cfg.N)
	for i := range e.ids {
		e.members = append(e.members, e.memberAt(int32(i)))
	}
	core.SortMembers(e.members)
	e.bootstrapViews(0)
	e.record()
	return e, nil
}

// slotOf resolves an ID to its arena slot: one bounds check and one
// slice load. The second result is false for departed or unknown IDs.
func (e *Engine) slotOf(id core.ID) (int32, bool) {
	if id < 1 || int(id) >= len(e.slots) {
		return noSlot, false
	}
	s := e.slots[id]
	return s, s >= 0
}

// memberAt reads slot s's identity and current attribute.
func (e *Engine) memberAt(s int32) core.Member {
	if e.cfg.Protocol == Ordering {
		return e.ons[s].Member()
	}
	return e.rns[s].Member()
}

// estimateAt reads slot s's live coordinate (random value or rank
// estimate). Cold paths only; hot loops specialize per protocol.
func (e *Engine) estimateAt(s int32) float64 {
	if e.cfg.Protocol == Ordering {
		return e.ons[s].Estimate()
	}
	return e.rns[s].Estimate()
}

// setAttrAt routes a forced attribute change to slot s's protocol node
// — the single hook the fault plane mutates attributes through, which
// is what keeps the dense attribute mirror honest.
func (e *Engine) setAttrAt(s int32, a core.Attr) {
	if e.cfg.Protocol == Ordering {
		e.ons[s].SetAttr(a)
		e.attrs[s] = a
	} else {
		e.rns[s].SetAttr(a)
	}
}

// selfEntryAt builds slot s's current gossip self entry.
func (e *Engine) selfEntryAt(s int32) view.Entry {
	if e.cfg.Protocol == Ordering {
		return e.ons[s].SelfEntry()
	}
	return e.rns[s].SelfEntry()
}

// addNode creates a node with the next identifier and appends it to the
// arena. Views start empty and the attribute-ordered membership is not
// updated; the caller bootstraps views and merges the membership.
func (e *Engine) addNode(attr core.Attr) error {
	e.nextID++
	id := e.nextID
	slot := len(e.ids)
	if e.varena.EnsureSlots(slot + 1) {
		// The backing arrays moved; every bound view still points into
		// the old ones. Rebind each onto its (already copied) block.
		for s, v := range e.views {
			v.Rebind(e.varena.Block(s))
		}
	}
	eb, ib, ob := e.varena.Block(slot)
	v := view.NewBound(e.cfg.ViewSize, eb, ib, ob)
	switch e.cfg.Protocol {
	case Ordering:
		r0 := 1 - e.rng.Float64() // uniform in (0,1]
		n, err := ordering.NewNode(ordering.Config{
			ID: id, Attr: attr, Partition: e.part,
			Policy: e.cfg.Policy, View: v,
			InitialR: r0,
		})
		if err != nil {
			return err
		}
		e.ons = append(e.ons, *n)
		e.rs = append(e.rs, r0)
		e.attrs = append(e.attrs, attr)
		e.sliceR = append(e.sliceR, math.NaN())
		e.sliceIdx = append(e.sliceIdx, 0)
	case Ranking:
		var est ranking.Estimator
		switch e.cfg.Estimator {
		case WindowEstimator:
			w, err := ranking.NewWindow(e.cfg.WindowSize)
			if err != nil {
				return err
			}
			est = w
		default:
			est = ranking.NewCounter()
		}
		n, err := ranking.NewNode(ranking.Config{
			ID: id, Attr: attr, Partition: e.part,
			Estimator: est, View: v,
			DisableViewScan:     e.cfg.DisableViewScan,
			DisableBoundaryBias: e.cfg.DisableBoundaryBias,
		})
		if err != nil {
			return err
		}
		e.rns = append(e.rns, *n)
	}
	e.slots = append(e.slots, int32(slot))
	e.ids = append(e.ids, id)
	e.views = append(e.views, v)
	e.self = append(e.self, e.selfEntryAt(int32(slot)))
	return nil
}

// refreshSelfEntries re-caches every live node's SelfEntry. Called once
// per cycle for uniform-oracle runs (before the membership phase, so
// oracle draws see coordinates at most one phase old — exactly what a
// fresh gossip entry would carry) and once per joining churn event
// (before bootstrap views are sampled). Cyclon and Newscast exchanges
// read the live node state directly and never consume the cache. Each
// slot is written by exactly one worker, so the pass parallelizes
// trivially.
func (e *Engine) refreshSelfEntries() {
	if e.cfg.Protocol == Ordering {
		e.parallelFor(len(e.ids), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				e.self[i] = e.ons[i].SelfEntry()
			}
		})
	} else {
		e.parallelFor(len(e.ids), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				e.self[i] = e.rns[i].SelfEntry()
			}
		})
	}
}

// bootstrapViews fills the view of every node in slots [from, len) with
// ViewSize random other nodes. The sampler's output is distinct and
// excludes the owner, so the bulk Reset is identical to the reference
// Add loop minus its per-entry duplicate scans — at construction that
// is O(c²) saved per node, a visible slice of a million-node run's
// wall time (a scenario's cycles/sec includes engine construction).
func (e *Engine) bootstrapViews(from int) {
	for i := from; i < len(e.ids); i++ {
		fresh := e.sampleEntries(e.rng, e.cfg.ViewSize, e.ids[i])
		if e.cfg.ReferenceKernels {
			for _, entry := range fresh {
				e.views[i].Add(entry)
			}
			continue
		}
		e.views[i].Reset(fresh)
	}
}

// sampleEntries returns cached self entries for up to k distinct random
// live nodes, excluding one id, through the engine's serial sampler. It
// backs view bootstrapping (engine stream); the per-cycle oracle
// re-draws run on per-worker samplers instead (oracleRound). The
// returned slice is a reusable buffer, valid until the next call;
// callers copy the entries into a view immediately.
func (e *Engine) sampleEntries(rng core.RNG, k int, exclude core.ID) []view.Entry {
	return e.sampler.sample(e.ids, e.self, rng, k, exclude)
}

// sampler is the rejection-sampling scratch behind uniform draws of
// live nodes. Rejection sampling keeps a draw O(k) for k ≪ n — the
// oracle draws once per node per cycle, so a full permutation here
// would make uniform-sampler runs quadratic in the population — and the
// generation-stamped seenGen slice keeps each rejection test a single
// slice load instead of a map probe: seenGen[i] == gen means slot i was
// already drawn this call.
type sampler struct {
	seenGen []uint32
	gen     uint32
	buf     []view.Entry
	// idx and sink back the draw-ahead warm pass in sample: the k slot
	// indices a call will consume are drawn up front and their seenGen
	// and self-entry cache lines touched in a dependency-free loop, so
	// the ~2k random-access misses overlap instead of serializing behind
	// the accept loop's seen-check branch. sink keeps the compiler from
	// eliding the warming loads.
	idx  []int
	sink uint64
}

// sample fills the sampler's reusable buffer with the cached self
// entries of up to k distinct uniformly drawn live slots, excluding one
// id. ids and selfs are the engine's slot-parallel slices.
func (sp *sampler) sample(ids []core.ID, selfs []view.Entry, rng core.RNG, k int, exclude core.ID) []view.Entry {
	n := len(ids)
	out := sp.buf[:0]
	if n == 0 || k <= 0 {
		return out
	}
	if k >= n {
		for i := range ids {
			if ids[i] != exclude {
				out = append(out, selfs[i])
			}
		}
		sp.buf = out
		return out
	}
	if cap(sp.seenGen) < n {
		sp.seenGen = make([]uint32, n)
	}
	sp.seenGen = sp.seenGen[:n]
	sp.gen++
	if sp.gen == 0 { // wrapped: stale stamps could collide, reset them
		clear(sp.seenGen)
		sp.gen = 1
	}
	gen := sp.gen
	// Draw the first k indices ahead of the accept loop and touch their
	// seenGen and self-entry lines with independent loads. The accept
	// loop's seen check is a branch on a random-access load; issued one
	// at a time those misses serialize, while this pass lets the CPU
	// keep many in flight. The RNG consumption order is unchanged — the
	// accept loop replays the same draws from idx before falling back to
	// live draws for the (rare) rejection overflow.
	if cap(sp.idx) < k {
		sp.idx = make([]int, k)
	}
	idx := sp.idx[:k]
	warm := sp.sink
	for j := range idx {
		i := rng.Intn(n)
		idx[j] = i
		warm += uint64(sp.seenGen[i]) + uint64(selfs[i].ID)
	}
	sp.sink = warm
	drawn := 0
	j := 0
	for len(out) < k && drawn < n {
		var i int
		if j < len(idx) {
			i = idx[j]
			j++
		} else {
			i = rng.Intn(n)
		}
		if sp.seenGen[i] == gen {
			continue
		}
		sp.seenGen[i] = gen
		drawn++
		if ids[i] == exclude {
			continue
		}
		out = append(out, selfs[i])
	}
	sp.buf = out
	return out
}
