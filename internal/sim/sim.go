// Package sim implements the cycle-based simulation engine the paper's
// evaluation runs on (PeerSim's cycle model, §4.5): in each cycle every
// node updates its view through the membership protocol and then runs
// one slicing protocol step, with message exchanges atomic by default.
//
// Artificial concurrency (§4.5.2) is reproduced exactly as described:
// each swap exchange is an "overlapping message" with a configurable
// probability. Overlapping exchanges select their partner and capture
// their payload from a snapshot of the state at the beginning of the
// cycle and are delivered in random order at the end of the cycle, so
// their information can be stale by the time it lands — producing the
// unsuccessful swaps of Fig. 4(c). Non-overlapping exchanges read live
// state and complete immediately ("the view is up-to-date when a message
// is sent").
//
// Churn (§3.3) is applied at the start of each cycle: leavers vanish
// (crash and departure are indistinguishable), joiners arrive with a
// bootstrap view of random live nodes, a fresh random value (ordering)
// or an empty estimator (ranking).
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/gossipkit/slicing/internal/churn"
	"github.com/gossipkit/slicing/internal/core"
	"github.com/gossipkit/slicing/internal/dist"
	"github.com/gossipkit/slicing/internal/membership"
	"github.com/gossipkit/slicing/internal/metrics"
	"github.com/gossipkit/slicing/internal/ordering"
	"github.com/gossipkit/slicing/internal/proto"
	"github.com/gossipkit/slicing/internal/ranking"
	"github.com/gossipkit/slicing/internal/view"
)

// ProtocolKind selects the slicing protocol under simulation.
type ProtocolKind int

// Available protocols.
const (
	// Ordering runs JK or mod-JK (§4), depending on Config.Policy.
	Ordering ProtocolKind = iota + 1
	// Ranking runs the rank-estimation protocol (§5).
	Ranking
)

// String implements fmt.Stringer.
func (k ProtocolKind) String() string {
	switch k {
	case Ordering:
		return "ordering"
	case Ranking:
		return "ranking"
	default:
		return fmt.Sprintf("protocol(%d)", int(k))
	}
}

// MembershipKind selects the peer-sampling substrate.
type MembershipKind int

// Available membership substrates.
const (
	// CyclonViews is the Cyclon variant of §4.3.2 (the paper's default).
	CyclonViews MembershipKind = iota + 1
	// NewscastViews is the Newscast-like substrate (original JK).
	NewscastViews
	// UniformOracle re-draws views uniformly at random every cycle
	// (§5.3.2's idealized sampler).
	UniformOracle
)

// String implements fmt.Stringer.
func (k MembershipKind) String() string {
	switch k {
	case CyclonViews:
		return "cyclon"
	case NewscastViews:
		return "newscast"
	case UniformOracle:
		return "uniform"
	default:
		return fmt.Sprintf("membership(%d)", int(k))
	}
}

// EstimatorKind selects the ranking estimator.
type EstimatorKind int

// Available estimators.
const (
	// CounterEstimator is the unbounded ℓ/g counter of Fig. 5.
	CounterEstimator EstimatorKind = iota + 1
	// WindowEstimator is the sliding-window variant of §5.3.4.
	WindowEstimator
)

// Config parameterizes a simulation. The zero value is not runnable; see
// the field comments for required entries.
type Config struct {
	// N is the initial system size.
	N int
	// Slices is the number of equal slices (ignored when Partition is
	// set explicitly).
	Slices int
	// Partition overrides Slices with custom boundaries.
	Partition *core.Partition
	// ViewSize is the gossip view capacity c.
	ViewSize int
	// Protocol selects ordering (§4) or ranking (§5).
	Protocol ProtocolKind
	// Policy selects JK or mod-JK when Protocol == Ordering.
	Policy ordering.Policy
	// Membership selects the peer-sampling substrate. Default CyclonViews.
	Membership MembershipKind
	// Estimator selects the ranking estimator. Default CounterEstimator.
	Estimator EstimatorKind
	// WindowSize is the sliding-window size W (WindowEstimator only).
	WindowSize int
	// DisableViewScan turns off estimator feeding from view scans
	// (ranking ablation).
	DisableViewScan bool
	// DisableBoundaryBias makes both ranking targets random (ablation
	// of the Fig. 5 boundary-closest targeting).
	DisableBoundaryBias bool
	// Concurrency is the probability that a swap exchange is an
	// overlapping message (§4.5.2): 0 = the atomic cycle model, 0.5 =
	// the paper's "half concurrency", 1 = "full concurrency". An
	// overlapping exchange selects its partner from a cycle-start
	// snapshot ("the view might be out-of-date") and is delivered in
	// random order at the end of the cycle, where the swap predicate is
	// re-evaluated against live state — failed predicates are the
	// paper's unsuccessful swaps.
	Concurrency float64
	// StalePayloads additionally freezes the random value carried by an
	// overlapping swap request at its cycle-start snapshot instead of
	// refreshing it at delivery. This models a literal message-passing
	// reading of Fig. 2 under concurrency, where one-sided swaps
	// duplicate and lose random values (the drift extension experiment).
	// The paper's results correspond to the default (false): exchanges
	// execute on live values, only the selection is stale.
	StalePayloads bool
	// AttrDist draws the initial attribute values. Required.
	AttrDist dist.Source
	// Seed makes runs reproducible.
	Seed int64
	// Schedule and Pattern define churn; nil means a static system.
	Schedule churn.Schedule
	Pattern  churn.Pattern
	// RecordGDM additionally records the global disorder measure each
	// cycle (Fig. 4(a)).
	RecordGDM bool
}

// Config validation errors.
var (
	ErrConfigN        = errors.New("sim: N must be positive")
	ErrConfigView     = errors.New("sim: ViewSize must be positive")
	ErrConfigDist     = errors.New("sim: AttrDist is required")
	ErrConfigProtocol = errors.New("sim: unknown protocol")
	ErrConfigConc     = errors.New("sim: Concurrency must lie in [0,1]")
)

func (cfg *Config) validate() error {
	if cfg.N < 1 {
		return ErrConfigN
	}
	if cfg.ViewSize < 1 {
		return ErrConfigView
	}
	if cfg.AttrDist == nil {
		return ErrConfigDist
	}
	if cfg.Concurrency < 0 || cfg.Concurrency > 1 {
		return ErrConfigConc
	}
	switch cfg.Protocol {
	case Ordering, Ranking:
	default:
		return ErrConfigProtocol
	}
	if cfg.Membership == 0 {
		cfg.Membership = CyclonViews
	}
	if cfg.Estimator == 0 {
		cfg.Estimator = CounterEstimator
	}
	if cfg.Protocol == Ordering && cfg.Policy == 0 {
		cfg.Policy = ordering.SelectMaxGain
	}
	if cfg.Estimator == WindowEstimator && cfg.WindowSize < 1 {
		return ranking.ErrWindow
	}
	return nil
}

// simNode couples a slicing protocol instance with its membership
// protocol; they share one view.
type simNode struct {
	node proto.Node
	mem  membership.Protocol
}

// orderingNode returns the node as *ordering.Node when applicable.
func (s *simNode) orderingNode() (*ordering.Node, bool) {
	n, ok := s.node.(*ordering.Node)
	return n, ok
}

// Engine is a running simulation. Not safe for concurrent use.
type Engine struct {
	cfg    Config
	part   core.Partition
	rng    *rand.Rand
	byID   map[core.ID]*simNode
	order  []core.ID // deterministic iteration order (insertion order)
	nextID core.ID
	cycle  int

	sdm    metrics.Series
	gdm    metrics.Series
	unsucc metrics.Series // % unsuccessful swaps per cycle
	size   metrics.Series // live system size per cycle

	// Message counters (cumulative).
	Delivered MessageCounts

	prevReqReceived uint64
	prevFailed      uint64

	// Reusable per-cycle buffers. The engine is single-threaded and none
	// of these escape a Step call, so reuse keeps the hot path (permute,
	// snapshot, measure) allocation-free at steady state.
	permBuf     []core.ID
	snapBuf     proto.MapReader
	statesBuf   []metrics.NodeState
	membersBuf  []core.Member
	deferredBuf []deferredEnv
	sampleBuf   []view.Entry
	seenBuf     map[int]bool
	meter       metrics.Scratch
}

// MessageCounts tallies delivered protocol messages by type, plus
// messages dropped because their destination had left.
type MessageCounts struct {
	ViewRequests uint64
	ViewReplies  uint64
	SwapRequests uint64
	SwapReplies  uint64
	RankUpdates  uint64
	Dropped      uint64
}

// Total returns all delivered messages.
func (m MessageCounts) Total() uint64 {
	return m.ViewRequests + m.ViewReplies + m.SwapRequests + m.SwapReplies + m.RankUpdates
}

// New builds a simulation engine and records the initial (cycle-0)
// measurements.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	part := core.MustEqual(1)
	if cfg.Partition != nil {
		part = *cfg.Partition
	} else if cfg.Slices > 0 {
		p, err := core.Equal(cfg.Slices)
		if err != nil {
			return nil, err
		}
		part = p
	} else {
		return nil, core.ErrNoSlices
	}
	e := &Engine{
		cfg:    cfg,
		part:   part,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		byID:   make(map[core.ID]*simNode, cfg.N),
		sdm:    metrics.Series{Name: "sdm"},
		gdm:    metrics.Series{Name: "gdm"},
		unsucc: metrics.Series{Name: "unsuccessful%"},
		size:   metrics.Series{Name: "n"},
	}
	for i := 0; i < cfg.N; i++ {
		attr := core.Attr(cfg.AttrDist.Sample(e.rng))
		if err := e.addNode(attr); err != nil {
			return nil, err
		}
	}
	e.bootstrapViews()
	e.record()
	return e, nil
}

// addNode creates a node with the next identifier. Views start empty;
// the caller bootstraps them.
func (e *Engine) addNode(attr core.Attr) error {
	e.nextID++
	id := e.nextID
	v := view.MustNew(e.cfg.ViewSize)
	var node proto.Node
	switch e.cfg.Protocol {
	case Ordering:
		n, err := ordering.NewNode(ordering.Config{
			ID: id, Attr: attr, Partition: e.part,
			Policy: e.cfg.Policy, View: v,
			InitialR: 1 - e.rng.Float64(), // uniform in (0,1]
		})
		if err != nil {
			return err
		}
		node = n
	case Ranking:
		var est ranking.Estimator
		switch e.cfg.Estimator {
		case WindowEstimator:
			w, err := ranking.NewWindow(e.cfg.WindowSize)
			if err != nil {
				return err
			}
			est = w
		default:
			est = ranking.NewCounter()
		}
		n, err := ranking.NewNode(ranking.Config{
			ID: id, Attr: attr, Partition: e.part,
			Estimator: est, View: v,
			DisableViewScan:     e.cfg.DisableViewScan,
			DisableBoundaryBias: e.cfg.DisableBoundaryBias,
		})
		if err != nil {
			return err
		}
		node = n
	}
	var mem membership.Protocol
	selfEntry := node.SelfEntry
	switch e.cfg.Membership {
	case NewscastViews:
		mem = membership.NewNewscast(id, selfEntry, v)
	case UniformOracle:
		mem = membership.NewOracle(id, e.sampleEntries, v)
	default:
		mem = membership.NewCyclon(id, selfEntry, v)
	}
	// The engine delivers every exchange synchronously within a cycle, so
	// the membership protocols may reuse their payload buffers.
	if s, ok := mem.(membership.Scratchable); ok {
		s.EnableScratch()
	}
	e.byID[id] = &simNode{node: node, mem: mem}
	e.order = append(e.order, id)
	return nil
}

// bootstrapViews fills every node's view with ViewSize random other
// nodes.
func (e *Engine) bootstrapViews(ids ...core.ID) {
	targets := ids
	if len(targets) == 0 {
		targets = e.order
	}
	for _, id := range targets {
		sn := e.byID[id]
		for _, entry := range e.sampleEntries(e.rng, e.cfg.ViewSize, id) {
			sn.mem.View().Add(entry)
		}
	}
}

// sampleEntries returns fresh entries for up to k distinct random live
// nodes, excluding one id. It backs both view bootstrapping and the
// uniform oracle. Rejection sampling keeps it O(k) for k ≪ n — the
// oracle calls it once per node per cycle, so a full permutation here
// would make uniform-sampler runs quadratic in the population. The
// returned slice is a reusable engine buffer, valid until the next call;
// both callers copy the entries into a view immediately.
func (e *Engine) sampleEntries(rng *rand.Rand, k int, exclude core.ID) []view.Entry {
	n := len(e.order)
	out := e.sampleBuf[:0]
	if n == 0 || k <= 0 {
		return out
	}
	if k >= n {
		for _, id := range e.order {
			if id != exclude {
				out = append(out, e.byID[id].node.SelfEntry())
			}
		}
		e.sampleBuf = out
		return out
	}
	if e.seenBuf == nil {
		e.seenBuf = make(map[int]bool, 2*k)
	} else {
		clear(e.seenBuf)
	}
	seen := e.seenBuf
	for len(out) < k && len(seen) < n {
		i := rng.Intn(n)
		if seen[i] {
			continue
		}
		seen[i] = true
		id := e.order[i]
		if id == exclude {
			continue
		}
		out = append(out, e.byID[id].node.SelfEntry())
	}
	e.sampleBuf = out
	return out
}
