package sim

import (
	"sync"

	"github.com/gossipkit/slicing/internal/ordering"
	"github.com/gossipkit/slicing/internal/ranking"
	"github.com/gossipkit/slicing/internal/view"
)

// This file holds the engine's parallel-execution primitives. The
// determinism contract they uphold: the worker count may change WHICH
// goroutine computes a slot or a chunk, but never WHAT is computed or
// in what order results are combined —
//
//   - parallelFor passes the worker index to fn strictly for
//     worker-local scratch; every output is written to a per-slot
//     location owned by exactly one worker, so range splits cannot
//     change results.
//   - chunkedSum reduces floating-point partial sums over fixed-size
//     chunks (a function of n only, never of the worker count) and adds
//     them in chunk order, so totals are bit-identical at any worker
//     count. Integer tallies don't need chunking — integer addition is
//     exact and commutative — and reduce over per-worker fields.

// simWorker is one worker's scratch block: a private rejection sampler
// for the oracle round, merge/reply/tick scratch for the compute and
// commit phases (shared across every node the worker drives, so a
// million value-stored nodes don't each grow private buffers), and
// integer partial tallies for the reduce steps.
type simWorker struct {
	sampler  sampler
	merge    view.MergeScratch
	replyBuf []view.Entry
	oscr     ordering.Scratch
	rscr     ranking.Scratch
	// stream holds the current node's derived RNG stream. Compute phases
	// pass it to protocol code through the core.RNG interface; parking it
	// here instead of in a loop-local keeps the interface conversion from
	// heap-allocating a fresh 8-byte box per node per cycle.
	stream Stream
	// sink absorbs the values loaded by cache-warming passes (the
	// exchange round touches the next request window one merge ahead of
	// its use). Accumulating into a worker field keeps the compiler from
	// eliding the loads; the value itself is never read.
	sink uint64

	dropped     uint64
	partDrops   uint64
	chaosDrops  uint64
	reqReceived uint64
	reqFailed   uint64
}

// parallelFor splits [0, n) into one contiguous range per worker and
// runs fn on each concurrently, blocking until all complete. With one
// worker (or n ≤ 1) it runs inline — the single-threaded engine never
// pays goroutine overhead. fn receives the worker index (for scratch in
// e.ws) and its half-open range.
func (e *Engine) parallelFor(n int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// reduceChunk is the fixed chunk size of every floating-point parallel
// reduction. It must never depend on the worker count; see the file
// comment.
const reduceChunk = 8192

// chunkedSum evaluates part over the fixed-size chunks of [0, n) in
// parallel and returns the chunk sums added in chunk order.
func (e *Engine) chunkedSum(n int, part func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	chunks := (n + reduceChunk - 1) / reduceChunk
	e.chunkSums = grow(e.chunkSums, chunks)
	sums := e.chunkSums
	e.parallelFor(chunks, func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			a := c * reduceChunk
			sums[c] = part(a, min(a+reduceChunk, n))
		}
	})
	total := 0.0
	for _, s := range sums {
		total += s
	}
	return total
}

// grow returns buf resized to n, reallocating only when capacity is
// insufficient. Contents are unspecified; callers overwrite every slot
// they read.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}
