package sim

import (
	"sort"

	"github.com/gossipkit/slicing/internal/core"
	"github.com/gossipkit/slicing/internal/metrics"
	"github.com/gossipkit/slicing/internal/ordering"
	"github.com/gossipkit/slicing/internal/proto"
)

// Step runs one simulation cycle: churn, the membership round, the
// slicing-protocol round, then measurement. Each round is a
// compute/commit pair (see the package comment): computes fan out over
// Config.Workers goroutines against immutable start-of-round state,
// commits apply mutations in a deterministic slot order — so a cycle is
// bit-identical at any worker count.
func (e *Engine) Step() {
	pc := e.startPhases()
	refreshed := e.applyChurn()
	if e.applyFaults() {
		// Drift or a lie transition changed node attributes after churn's
		// refresh: the self-entry cache is stale again.
		refreshed = false
	}
	pc.lap(phaseIxChurn)
	if e.cfg.Membership == UniformOracle {
		if !refreshed {
			// Oracle draws serve from the self-entry cache; skip the
			// refresh when a joining churn event already ran one.
			e.refreshSelfEntries()
		}
		e.oracleRound()
	} else {
		e.exchangeRound()
	}
	pc.lap(phaseIxMembership)
	e.protocolRound()
	pc.lap(phaseIxProtocol)
	e.cycle++
	e.record()
	pc.lap(phaseIxMeasure)
}

// Run advances the simulation by the given number of cycles.
func (e *Engine) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		e.Step()
	}
}

// applyChurn executes the cycle's churn event (§3.3): leavers vanish
// without notice, joiners arrive with fresh state and a bootstrap view.
// The whole event costs one merge pass over the membership — leavers are
// swap-deleted from the arena in O(1) each, and both PickLeavers and
// every JoinAttr draw read the same pre-event attribute-ordered
// membership, so no event ever re-sorts the population. Churn runs
// single-threaded on the engine stream: events are a few nodes per
// cycle, and keeping their draws serial is what lets the per-node
// streams stay counter-based. It reports whether it refreshed the
// self-entry cache, so Step can avoid a duplicate refresh pass for
// oracle runs.
func (e *Engine) applyChurn() (refreshed bool) {
	if e.cfg.Schedule == nil || e.cfg.Pattern == nil {
		return false
	}
	ev := e.cfg.Schedule.At(e.cycle, len(e.nodes))
	if ev.Leave == 0 && ev.Join == 0 {
		return false
	}
	members := e.members // pre-event membership, attribute order
	if ev.Leave > 0 {
		for _, id := range e.cfg.Pattern.PickLeavers(e.rng, members, ev.Leave) {
			e.removeNode(id)
		}
	}
	joiners := e.joinersBuf[:0]
	for i := 0; i < ev.Join; i++ {
		attr := e.cfg.Pattern.JoinAttr(e.rng, members)
		if err := e.addNode(attr); err != nil {
			// addNode only fails on invalid static configuration, which
			// New has already validated.
			panic(err)
		}
		joiners = append(joiners, core.Member{ID: e.nextID, Attr: attr})
	}
	e.joinersBuf = joiners
	e.mergeMembers(joiners)
	if ev.Join > 0 {
		// Bootstrap views sample the cached self entries; re-cache so
		// joiners see current coordinates, not cycle-of-creation ones.
		e.refreshSelfEntries()
		e.bootstrapViews(len(e.nodes) - ev.Join)
		return true
	}
	return false
}

// mergeMembers rebuilds the attribute-ordered membership after a churn
// event in one pass: departed members are dropped (their slot is gone)
// and the event's joiners — sorted among themselves, at most a handful —
// are merged in. O(n + j·log j) per event, against the O(n·log n) sort
// per joiner the map-based engine paid.
func (e *Engine) mergeMembers(joiners []core.Member) {
	core.SortMembers(joiners)
	out := e.membersBuf[:0]
	j := 0
	for _, m := range e.members {
		if e.slots[m.ID] == noSlot {
			continue // departed this event
		}
		for j < len(joiners) && core.Less(joiners[j], m) {
			out = append(out, joiners[j])
			j++
		}
		out = append(out, m)
	}
	out = append(out, joiners[j:]...)
	e.members, e.membersBuf = out, e.members
}

// removeNode swap-deletes a node from the arena: the last node moves
// into the vacated slot and the departed ID's slot entry is tombstoned.
// O(1) per removal; the attribute-ordered membership is compacted later
// by mergeMembers.
func (e *Engine) removeNode(id core.ID) {
	s, ok := e.slotOf(id)
	if !ok {
		return
	}
	last := int32(len(e.nodes) - 1)
	if s != last {
		e.nodes[s] = e.nodes[last]
		e.slots[e.nodes[s].id] = s
	}
	e.nodes[last] = simNode{} // release protocol state to the GC
	e.nodes = e.nodes[:last]
	e.slots[id] = noSlot
	delete(e.lying, id)
}

// exchangeRound is the membership phase for the gossiping substrates
// (Cyclon, Newscast), restructured from the serial permutation walk
// into compute/commit rounds.
//
// Compute (parallel over slots): every node ages its view and selects
// its partner on its own per-cycle stream — each node touches only its
// own state — then its request payload (post-age view plus a fresh self
// entry) is frozen into a flat engine buffer. Requests to departed
// partners time out here (the initiator drops the stale entry and skips
// its exchange, exactly as in the serial engine).
//
// Commit half A (parallel over view OWNERS): each target absorbs one
// frozen request per initiator that selected it, in ascending
// initiator-slot order, and just before absorbing each request it
// materializes that initiator's reply from its LIVE view — so when
// several initiators fan in on one target in the same cycle, each gets
// a different reply, exactly as the serial walk produced. (Serving all
// of them the same frozen view instead measurably homogenizes views —
// clusters of nodes end up holding near-identical neighbor sets, which
// starves the ranking estimator of sample diversity and stalls its
// convergence.) Reply payloads are written to per-INITIATOR buffer
// slots, and every initiator has exactly one target, so no two workers
// ever write the same slot.
//
// Commit half B (parallel over initiators, after a barrier): every
// initiator absorbs its materialized reply.
//
// Each view's merge sequence — requests in initiator-slot order in half
// A, its own reply in half B — is fixed by slot order alone, so the
// round is bit-identical at any worker count. Every node still
// completes one full REQ′/ACK′ exchange per cycle ("each node updates
// its view before sending its random value or its attribute value",
// §4.5.2); what changed versus the serial engine is only that requests
// read start-of-round views and replies land after all requests.
func (e *Engine) exchangeRound() {
	n := len(e.nodes)
	if n == 0 {
		return
	}
	stride := e.cfg.ViewSize + 1 // view entries + a self entry
	e.memTarget = grow(e.memTarget, n)
	e.reqLen = grow(e.reqLen, n)
	e.reqStore = grow(e.reqStore, n*stride)
	e.replyLen = grow(e.replyLen, n)
	e.replyStore = grow(e.replyStore, n*stride)
	e.selfSnap = grow(e.selfSnap, n)
	for i := range e.ws {
		e.ws[i].dropped, e.ws[i].partDrops, e.ws[i].chaosDrops = 0, 0, 0
	}
	seed, cycle := e.cfg.Seed, uint64(e.cycle)
	chaosLoss := 0.0
	if e.chaosNow != nil {
		chaosLoss = e.chaosNow.Loss
	}
	e.parallelFor(n, func(w, lo, hi int) {
		ws := &e.ws[w]
		for s := lo; s < hi; s++ {
			sn := &e.nodes[s]
			st := nodeStream(seed, uint64(sn.id), cycle, phaseMembership)
			tgt := int32(-1)
			if id, ok := sn.ex.SelectPartner(&st); ok {
				if ts, live := e.slotOf(id); live {
					switch {
					case e.partitionBlocks(sn.id, id):
						// The partner is unreachable across the partition:
						// the exchange is suppressed, but the view entry is
						// KEPT — the partner is alive, and those entries are
						// what re-merges the overlay when the partition
						// heals (no sim node ever re-bootstraps).
						ws.partDrops++
					case chaosLoss > 0 && st.Float64() < chaosLoss:
						// Chaos ate the view request; the exchange never
						// completes this cycle.
						ws.chaosDrops++
					default:
						tgt = ts
					}
				} else {
					// The partner departed: the request times out and the
					// initiator drops the stale entry (§3.3).
					ws.dropped++
					sn.mem.OnTimeout(id)
				}
			}
			e.memTarget[s] = tgt
			self := sn.node.SelfEntry()
			e.selfSnap[s] = self
			off := s * stride
			req := append(sn.mem.View().AppendEntries(e.reqStore[off:off:off+stride]), self)
			e.reqLen[s] = int32(len(req))
		}
	})
	for i := range e.ws {
		e.Delivered.Dropped += e.ws[i].dropped + e.ws[i].partDrops + e.ws[i].chaosDrops
		e.fc.PartitionDrops += e.ws[i].partDrops
		e.fc.ChaosDrops += e.ws[i].chaosDrops
	}

	// Deterministic per-target initiator lists: a counting sort of the
	// partner choices by target slot. initList[head[t]:head[t+1]] holds
	// the initiator slots of target t in ascending order.
	e.initHead = grow(e.initHead, n+1)
	e.initPos = grow(e.initPos, n)
	e.initList = grow(e.initList, n)
	head := e.initHead
	clear(head[:n+1])
	delivered := uint64(0)
	for s := 0; s < n; s++ {
		if t := e.memTarget[s]; t >= 0 {
			head[t+1]++
			delivered++
		}
	}
	for t := 0; t < n; t++ {
		head[t+1] += head[t]
	}
	pos := e.initPos
	copy(pos, head[:n])
	for s := 0; s < n; s++ {
		if t := e.memTarget[s]; t >= 0 {
			e.initList[pos[t]] = int32(s)
			pos[t]++
		}
	}
	// One request and one reply land per completed exchange.
	e.Delivered.ViewRequests += delivered
	e.Delivered.ViewReplies += delivered

	// Commit half A: targets reply and absorb, in initiator-slot order.
	e.parallelFor(n, func(_, lo, hi int) {
		for t := lo; t < hi; t++ {
			tn := &e.nodes[t]
			list := e.initList[head[t]:head[t+1]]
			if len(list) == 0 {
				continue
			}
			replySelf := tn.ex.ReplyAddsSelf()
			v := tn.mem.View()
			for _, s32 := range list {
				s := int(s32)
				off := s * stride
				reply := v.AppendEntries(e.replyStore[off : off : off+stride])
				if replySelf {
					reply = append(reply, e.selfSnap[t])
				}
				e.replyLen[s] = int32(len(reply))
				tn.ex.Absorb(e.reqStore[s*stride : s*stride+int(e.reqLen[s])])
			}
		}
	})
	// Commit half B: initiators absorb their replies.
	e.parallelFor(n, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			if e.memTarget[s] < 0 {
				continue
			}
			sn := &e.nodes[s]
			off := s * stride
			sn.ex.Absorb(e.replyStore[off : off+int(e.replyLen[s])])
		}
	})
}

// oracleRound is the membership phase for the uniform oracle (§5.3.2):
// every view is re-drawn uniformly at random from the live population.
// Draws run on per-node streams against the frozen self-entry cache, so
// the round parallelizes over slots with no exchange step at all — the
// oracle's semantics (fresh uniform sample, no messages) are exactly
// those of membership.Oracle.Tick, executed engine-side so each worker
// can use its own rejection-sampling scratch.
func (e *Engine) oracleRound() {
	k := e.cfg.ViewSize
	seed, cycle := e.cfg.Seed, uint64(e.cycle)
	e.parallelFor(len(e.nodes), func(w, lo, hi int) {
		ws := &e.ws[w]
		for s := lo; s < hi; s++ {
			sn := &e.nodes[s]
			st := nodeStream(seed, uint64(sn.id), cycle, phaseMembership)
			fresh := ws.sampler.sample(e.nodes, &st, k, sn.id)
			v := sn.mem.View()
			v.Clear()
			for _, en := range fresh {
				if en.ID != sn.id {
					v.Add(en)
				}
			}
		}
	})
}

// deferredEnv is an overlapping message held back until the end of the
// cycle (§4.5.2). The sender is recorded by arena slot: churn never runs
// mid-cycle, so slots are stable for the lifetime of the deferral.
type deferredEnv struct {
	from int32
	env  proto.Envelope
}

// maxTickEnvs bounds the envelopes one protocol tick can produce: the
// ordering protocols send at most one swap request, ranking at most two
// rank updates. The per-slot envelope store is strided by it.
const maxTickEnvs = 2

// protocolRound runs the slicing step of every node as a compute/commit
// pair.
//
// Compute (parallel over slots): every node's coordinate is frozen into
// a start-of-phase snapshot, then every initiator ticks on its own
// per-cycle stream against that snapshot — partner choice, outgoing
// envelopes and (for mod-JK) the local-sequence ranking all read frozen
// state, so the expensive part of the phase uses all cores. Each slot's
// envelopes are copied into an engine-owned store: a commit-phase
// Handle reuses the node's envelope scratch, which must not clobber a
// later slot's pending tick output.
//
// Commit (serial, deterministic): deliveries apply in slot order.
// Non-overlapping ordering exchanges are atomic (§4.5.2, "the view is
// up-to-date when a message is sent"): the request re-reads the live
// random value and re-validates the swap predicate at send time, and a
// selection that went stale between compute and commit is abandoned
// unsent — which is why the atomic cycle model still produces zero
// unsuccessful swaps. Overlapping exchanges (probability
// Config.Concurrency, drawn on the initiator's stream) keep their
// stale-delivery semantics: they land after every immediate exchange,
// in an engine-stream shuffled order, where the swap predicate is
// re-evaluated against live state — failed predicates are the paper's
// unsuccessful swaps. Ranking updates are one-way and always useful, so
// they deliver immediately regardless of Concurrency (§5).
func (e *Engine) protocolRound() {
	n := len(e.nodes)
	if n == 0 {
		return
	}
	e.snapBuf = grow(e.snapBuf, n)
	e.parallelFor(n, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			e.snapBuf[s] = e.nodes[s].node.Estimate()
		}
	})
	e.envStore = grow(e.envStore, n*maxTickEnvs)
	e.envCount = grow(e.envCount, n)
	e.overlapBuf = grow(e.overlapBuf, n)
	conc := e.cfg.Concurrency
	drawOverlap := e.cfg.Protocol == Ordering && conc > 0
	reader := (*snapReader)(e)
	seed, cycle := e.cfg.Seed, uint64(e.cycle)
	e.parallelFor(n, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			sn := &e.nodes[s]
			st := nodeStream(seed, uint64(sn.id), cycle, phaseProtocol)
			overlap := drawOverlap && st.Float64() < conc
			envs := sn.node.Tick(reader, &st)
			if len(envs) > maxTickEnvs {
				panic("sim: protocol tick produced more envelopes than maxTickEnvs")
			}
			copy(e.envStore[s*maxTickEnvs:], envs)
			e.envCount[s] = int8(len(envs))
			e.overlapBuf[s] = overlap
		}
	})

	overlapping := e.deferredBuf[:0]
	for s := 0; s < n; s++ {
		k := int(e.envCount[s])
		if k == 0 {
			continue
		}
		envs := e.envStore[s*maxTickEnvs : s*maxTickEnvs+k]
		if e.overlapBuf[s] {
			for _, env := range envs {
				overlapping = append(overlapping, deferredEnv{from: int32(s), env: env})
			}
			continue
		}
		sn := &e.nodes[s]
		for _, env := range envs {
			if e.partitionBlocks(sn.id, env.To) {
				e.fc.PartitionDrops++
				e.Delivered.Dropped++
				continue
			}
			if ch := e.chaosNow; ch != nil {
				// Chaos draws run on the engine's serial stream, exactly
				// like the overlapping-delivery shuffle — this loop is
				// slot-ordered and single-threaded, so the draw sequence
				// is worker-count independent. A delayed envelope joins
				// the overlapping set: it lands at end of cycle with the
				// stale-delivery semantics overlap already has.
				if ch.Loss > 0 && e.rng.Float64() < ch.Loss {
					e.fc.ChaosDrops++
					e.Delivered.Dropped++
					continue
				}
				if ch.Delay > 0 && e.rng.Float64() < ch.Delay {
					e.fc.ChaosDelays++
					overlapping = append(overlapping, deferredEnv{from: int32(s), env: env})
					continue
				}
			}
			if req, ok := env.Msg.(proto.SwapRequest); ok {
				// Atomic exchange: send the live value, and only if the
				// swap still helps.
				req.R = sn.node.Estimate()
				env.Msg = req
				if tgt := e.lookup(env.To); tgt != nil && !swapStillHelps(tgt, req) {
					if on, ok := sn.orderingNode(); ok {
						on.AbandonSwap()
					}
					continue
				}
			}
			e.deliver(sn.id, env)
			if ch := e.chaosNow; ch != nil && ch.Dup > 0 && e.rng.Float64() < ch.Dup {
				// Duplication: the same envelope lands twice.
				e.fc.ChaosDups++
				e.deliver(sn.id, env)
			}
		}
	}
	e.deferredBuf = overlapping[:0]
	// Overlapping messages land in random order at the end of the cycle;
	// by then their payload and partner choice may be stale.
	e.rng.Shuffle(len(overlapping), func(i, j int) {
		overlapping[i], overlapping[j] = overlapping[j], overlapping[i]
	})
	for _, d := range overlapping {
		sn := &e.nodes[d.from]
		env := d.env
		if e.partitionBlocks(sn.id, env.To) {
			e.fc.PartitionDrops++
			e.Delivered.Dropped++
			continue
		}
		if ch := e.chaosNow; ch != nil && ch.Loss > 0 && e.rng.Float64() < ch.Loss {
			e.fc.ChaosDrops++
			e.Delivered.Dropped++
			continue
		}
		if req, ok := env.Msg.(proto.SwapRequest); ok && !e.cfg.StalePayloads {
			// The exchange executes on live values; only the partner
			// selection was stale. This keeps the swap two-sided and the
			// random-value multiset conserved, matching the paper's
			// Fig. 4(d).
			req.R = sn.node.Estimate()
			env.Msg = req
		}
		e.deliver(sn.id, env)
	}
}

// swapStillHelps re-evaluates the receiver-side swap predicate of a
// refreshed request against the target's live state: the commit-time
// validation of an atomic exchange.
func swapStillHelps(target *simNode, req proto.SwapRequest) bool {
	m := target.node.Member()
	return ordering.Misplaced(m.Attr, req.Attr, target.node.Estimate(), req.R)
}

// deliver routes one protocol envelope to its destination, delivering
// any replies back to the sender (the REQ/ACK round of Fig. 2, or the
// one-way UPD of Fig. 5).
func (e *Engine) deliver(from core.ID, env proto.Envelope) {
	target := e.lookup(env.To)
	if target == nil {
		e.Delivered.Dropped++
		return
	}
	e.countMessage(env.Msg)
	for _, rep := range target.node.Handle(from, env.Msg, e.rng) {
		sender := e.lookup(rep.To)
		if sender == nil {
			e.Delivered.Dropped++
			continue
		}
		e.countMessage(rep.Msg)
		sender.node.Handle(env.To, rep.Msg, e.rng)
	}
}

func (e *Engine) countMessage(msg proto.Message) {
	switch msg.(type) {
	case proto.SwapRequest:
		e.Delivered.SwapRequests++
	case proto.SwapReply:
		e.Delivered.SwapReplies++
	case proto.RankUpdate:
		e.Delivered.RankUpdates++
	case proto.ViewRequest:
		e.Delivered.ViewRequests++
	case proto.ViewReply:
		e.Delivered.ViewReplies++
	}
}

// snapReader serves the phase-start coordinate snapshot captured by
// protocolRound, resolving IDs to slots without hashing. Every
// compute-phase tick reads through it: the snapshot is immutable for
// the duration of the parallel pass, which is what makes concurrent
// ticks race-free AND order-independent.
type snapReader Engine

// R implements proto.StateReader.
func (sr *snapReader) R(id core.ID) (float64, bool) {
	e := (*Engine)(sr)
	s, ok := e.slotOf(id)
	if !ok {
		return 0, false
	}
	return e.snapBuf[s], true
}

// record appends the cycle's measurements to the result series. The
// per-node reads (believed slices, rank tallies) fan out over the
// workers; sums reduce over fixed chunks in chunk order (floats) or
// per-worker tallies (integers), so recorded values are independent of
// the worker count. SDM reads the incrementally maintained attribute
// order: O(n), no sort.
func (e *Engine) record() {
	n := len(e.nodes)
	e.believedBuf = grow(e.believedBuf, n)
	believed := e.believedBuf
	e.parallelFor(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			believed[i] = e.nodes[e.slots[e.members[i].ID]].node.SliceIndex()
		}
	})
	sdm := e.chunkedSum(n, func(lo, hi int) float64 {
		return metrics.SDMSortedRange(believed, e.part, lo, hi)
	})
	e.sdm.Add(e.cycle, sdm)
	e.size.Add(e.cycle, float64(n))
	e.recordPollution(believed)
	if e.tel != nil {
		e.tel.cycle.Set(float64(e.cycle))
		e.tel.nodes.Set(float64(n))
		e.tel.sdm.Set(sdm)
		e.publishFaultTelemetry()
	}
	if e.cfg.RecordGDM {
		gdm := e.measureGDM()
		e.gdm.Add(e.cycle, gdm)
		if e.tel != nil {
			e.tel.gdm.Set(gdm)
		}
	}
	if e.cfg.Protocol == Ordering {
		for i := range e.ws {
			e.ws[i].reqReceived, e.ws[i].reqFailed = 0, 0
		}
		e.parallelFor(n, func(w, lo, hi int) {
			ws := &e.ws[w]
			var recv, fail uint64
			for i := lo; i < hi; i++ {
				if on, ok := e.nodes[i].orderingNode(); ok {
					st := on.Stats()
					recv += st.ReqReceived
					fail += st.SwapFailedAtReceiver
				}
			}
			ws.reqReceived, ws.reqFailed = recv, fail
		})
		var received, failed uint64
		for i := range e.ws {
			received += e.ws[i].reqReceived
			failed += e.ws[i].reqFailed
		}
		dr, df := received-min(received, e.prevReqReceived), failed-min(failed, e.prevFailed)
		pct := 0.0
		if dr > 0 {
			pct = 100 * float64(df) / float64(dr)
		}
		e.unsucc.Add(e.cycle, pct)
		e.prevReqReceived, e.prevFailed = received, failed
	}
}

// measureGDM computes the global disorder measure (§4.2) from the
// engine's own rank buffers: attribute ranks come straight off the
// incrementally maintained membership order (no sort), coordinate ranks
// from one serial (R, ID) sort — a strict total order, so any correct
// sort yields the same permutation — and the squared-distance sum
// reduces over fixed chunks. Equivalent to metrics.GDM over States().
func (e *Engine) measureGDM() float64 {
	n := len(e.nodes)
	if n == 0 {
		return 0
	}
	e.alphaBuf = grow(e.alphaBuf, n)
	e.rhoBuf = grow(e.rhoBuf, n)
	e.rBuf = grow(e.rBuf, n)
	e.idxBuf = grow(e.idxBuf, n)
	alpha, rho, r, idx := e.alphaBuf, e.rhoBuf, e.rBuf, e.idxBuf
	e.parallelFor(n, func(_, lo, hi int) {
		for pos := lo; pos < hi; pos++ {
			alpha[e.slots[e.members[pos].ID]] = int32(pos + 1)
		}
	})
	e.parallelFor(n, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			r[s] = e.nodes[s].node.Estimate()
			idx[s] = int32(s)
		}
	})
	sort.Sort(&rhoSorter{idx: idx, r: r, nodes: e.nodes})
	e.parallelFor(n, func(_, lo, hi int) {
		for pos := lo; pos < hi; pos++ {
			rho[idx[pos]] = int32(pos + 1)
		}
	})
	return e.chunkedSum(n, func(lo, hi int) float64 {
		return metrics.GDMRange(alpha, rho, lo, hi)
	}) / float64(n)
}

// rhoSorter orders arena slots by (coordinate, ID): the random-value
// sequence of the GDM definition, ties broken by the unique identifier.
type rhoSorter struct {
	idx   []int32
	r     []float64
	nodes []simNode
}

func (rs *rhoSorter) Len() int      { return len(rs.idx) }
func (rs *rhoSorter) Swap(i, j int) { rs.idx[i], rs.idx[j] = rs.idx[j], rs.idx[i] }
func (rs *rhoSorter) Less(i, j int) bool {
	a, b := rs.idx[i], rs.idx[j]
	if rs.r[a] != rs.r[b] {
		return rs.r[a] < rs.r[b]
	}
	return rs.nodes[a].id < rs.nodes[b].id
}

// States snapshots every live node for measurement, in arena order. The
// caller owns the returned slice.
func (e *Engine) States() []metrics.NodeState {
	states := make([]metrics.NodeState, 0, len(e.nodes))
	for i := range e.nodes {
		sn := &e.nodes[i]
		states = append(states, metrics.NodeState{
			Member:     sn.node.Member(),
			R:          sn.node.Estimate(),
			SliceIndex: sn.node.SliceIndex(),
		})
	}
	return states
}

// Cycle returns the number of completed cycles.
func (e *Engine) Cycle() int { return e.cycle }

// N returns the current live system size.
func (e *Engine) N() int { return len(e.nodes) }

// Partition returns the slice partition in force.
func (e *Engine) Partition() core.Partition { return e.part }

// Workers returns the engine's resolved compute-worker count.
func (e *Engine) Workers() int { return e.workers }

// SDM returns the slice disorder series (one point per completed cycle,
// plus the initial state at cycle 0).
func (e *Engine) SDM() metrics.Series { return e.sdm }

// GDM returns the global disorder series (empty unless RecordGDM).
func (e *Engine) GDM() metrics.Series { return e.gdm }

// UnsuccessfulPct returns the per-cycle percentage of swap requests
// whose predicate had expired on arrival (Fig. 4(c)).
func (e *Engine) UnsuccessfulPct() metrics.Series { return e.unsucc }

// Size returns the live-population series.
func (e *Engine) Size() metrics.Series { return e.size }

// OrderingStats sums the event counters over all live ordering nodes.
func (e *Engine) OrderingStats() ordering.Stats {
	var total ordering.Stats
	for i := range e.nodes {
		if on, ok := e.nodes[i].orderingNode(); ok {
			st := on.Stats()
			total.ReqSent += st.ReqSent
			total.ReqReceived += st.ReqReceived
			total.SwapFailedAtReceiver += st.SwapFailedAtReceiver
			total.SwapFailedAtInitiator += st.SwapFailedAtInitiator
			total.SwapAbandonedAtSender += st.SwapAbandonedAtSender
			total.Swapped += st.Swapped
		}
	}
	return total
}

// Result bundles the series of a completed run.
type Result struct {
	SDM             metrics.Series
	GDM             metrics.Series
	UnsuccessfulPct metrics.Series
	Size            metrics.Series
	// Pollution is the per-cycle byzantine slice pollution (empty unless
	// the run's fault plan had a Byzantine family).
	Pollution metrics.Series
	Messages  MessageCounts
	// Faults tallies the injections the run's fault plan performed.
	Faults FaultCounts
	FinalN int
	Cycles int
}

// Run builds an engine from cfg, advances it the given number of cycles
// and returns the recorded series.
func Run(cfg Config, cycles int) (*Result, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	e.Run(cycles)
	return &Result{
		SDM:             e.SDM(),
		GDM:             e.GDM(),
		UnsuccessfulPct: e.UnsuccessfulPct(),
		Size:            e.Size(),
		Pollution:       e.Pollution(),
		Messages:        e.Delivered,
		Faults:          e.FaultTally(),
		FinalN:          e.N(),
		Cycles:          e.Cycle(),
	}, nil
}
