package sim

import (
	"math"
	"sort"

	"github.com/gossipkit/slicing/internal/core"
	"github.com/gossipkit/slicing/internal/metrics"
	"github.com/gossipkit/slicing/internal/ordering"
	"github.com/gossipkit/slicing/internal/proto"
	"github.com/gossipkit/slicing/internal/ranking"
	"github.com/gossipkit/slicing/internal/view"
)

// Step runs one simulation cycle: churn, the membership round, the
// slicing-protocol round, then measurement. Each round is a
// compute/commit pair (see the package comment): computes fan out over
// Config.Workers goroutines against immutable start-of-round state,
// commits apply mutations in a deterministic slot order — so a cycle is
// bit-identical at any worker count.
func (e *Engine) Step() {
	pc := e.startPhases()
	refreshed := e.applyChurn()
	if e.applyFaults() {
		// Drift or a lie transition changed node attributes after churn's
		// refresh: the self-entry cache is stale again.
		refreshed = false
	}
	pc.lap(phaseIxChurn)
	if e.cfg.Membership == UniformOracle {
		if !refreshed {
			// Oracle draws serve from the self-entry cache; skip the
			// refresh when a joining churn event already ran one.
			e.refreshSelfEntries()
		}
		e.oracleRound()
	} else {
		e.exchangeRound()
	}
	pc.lap(phaseIxMembership)
	e.protocolRound()
	pc.lap(phaseIxProtocol)
	e.cycle++
	e.record()
	pc.lap(phaseIxMeasure)
}

// Run advances the simulation by the given number of cycles.
func (e *Engine) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		e.Step()
	}
}

// applyChurn executes the cycle's churn event (§3.3): leavers vanish
// without notice, joiners arrive with fresh state and a bootstrap view.
// The whole event costs one merge pass over the membership — leavers are
// swap-deleted from the arena in O(1) each, and both PickLeavers and
// every JoinAttr draw read the same pre-event attribute-ordered
// membership, so no event ever re-sorts the population. Churn runs
// single-threaded on the engine stream: events are a few nodes per
// cycle, and keeping their draws serial is what lets the per-node
// streams stay counter-based. It reports whether it refreshed the
// self-entry cache, so Step can avoid a duplicate refresh pass for
// oracle runs.
func (e *Engine) applyChurn() (refreshed bool) {
	if e.cfg.Schedule == nil || e.cfg.Pattern == nil {
		return false
	}
	ev := e.cfg.Schedule.At(e.cycle, len(e.ids))
	if ev.Leave == 0 && ev.Join == 0 {
		return false
	}
	members := e.members // pre-event membership, attribute order
	if ev.Leave > 0 {
		for _, id := range e.cfg.Pattern.PickLeavers(e.rng, members, ev.Leave) {
			e.removeNode(id)
		}
	}
	joiners := e.joinersBuf[:0]
	for i := 0; i < ev.Join; i++ {
		attr := e.cfg.Pattern.JoinAttr(e.rng, members)
		if err := e.addNode(attr); err != nil {
			// addNode only fails on invalid static configuration, which
			// New has already validated.
			panic(err)
		}
		joiners = append(joiners, core.Member{ID: e.nextID, Attr: attr})
	}
	e.joinersBuf = joiners
	e.mergeMembers(joiners)
	if ev.Join > 0 {
		// Bootstrap views sample the cached self entries; re-cache so
		// joiners see current coordinates, not cycle-of-creation ones.
		e.refreshSelfEntries()
		e.bootstrapViews(len(e.ids) - ev.Join)
		return true
	}
	return false
}

// mergeMembers rebuilds the attribute-ordered membership after a churn
// event in one pass: departed members are dropped (their slot is gone)
// and the event's joiners — sorted among themselves, at most a handful —
// are merged in. O(n + j·log j) per event, against the O(n·log n) sort
// per joiner the map-based engine paid.
func (e *Engine) mergeMembers(joiners []core.Member) {
	core.SortMembers(joiners)
	out := e.membersBuf[:0]
	j := 0
	for _, m := range e.members {
		if e.slots[m.ID] == noSlot {
			continue // departed this event
		}
		for j < len(joiners) && core.Less(joiners[j], m) {
			out = append(out, joiners[j])
			j++
		}
		out = append(out, m)
	}
	out = append(out, joiners[j:]...)
	e.members, e.membersBuf = out, e.members
}

// removeNode swap-deletes a node from the arena: the last node's state
// moves into the vacated slot across every parallel slice, its view is
// rebound onto the freed arena block (one block copy), and the departed
// ID's slot entry is tombstoned. O(1) per removal; the attribute-ordered
// membership is compacted later by mergeMembers.
func (e *Engine) removeNode(id core.ID) {
	s, ok := e.slotOf(id)
	if !ok {
		return
	}
	last := int32(len(e.ids) - 1)
	if e.ons != nil {
		// The departing node carries its swap counters away: the
		// unsuccessful-swap series sums over LIVE nodes (the reference
		// path re-scans Stats each cycle), so the engine-side running
		// totals must forget this node's history to keep reporting the
		// same live-only sums.
		st := e.ons[s].Stats()
		e.recvTotal -= st.ReqReceived
		e.failRecvTotal -= st.SwapFailedAtReceiver
	}
	if s != last {
		e.ids[s] = e.ids[last]
		e.self[s] = e.self[last]
		// The View header moves with its node (value copy keeps the
		// node's internal pointer valid); only its backing storage is
		// re-homed, Rebind copying the survivor's entries from block
		// `last` into the vacated block `s`.
		e.views[s] = e.views[last]
		e.views[s].Rebind(e.varena.Block(int(s)))
		if e.ons != nil {
			e.ons[s] = e.ons[last]
			e.rs[s] = e.rs[last]
			e.attrs[s] = e.attrs[last]
			e.sliceR[s] = e.sliceR[last]
			e.sliceIdx[s] = e.sliceIdx[last]
		} else {
			e.rns[s] = e.rns[last]
		}
		e.slots[e.ids[s]] = s
	}
	// Release the tail slot's state to the GC and truncate every
	// parallel slice in lockstep.
	if e.ons != nil {
		e.ons[last] = ordering.Node{}
		e.ons = e.ons[:last]
		e.rs = e.rs[:last]
		e.attrs = e.attrs[:last]
		e.sliceR = e.sliceR[:last]
		e.sliceIdx = e.sliceIdx[:last]
	} else {
		e.rns[last] = ranking.Node{}
		e.rns = e.rns[:last]
	}
	e.views[last] = nil
	e.views = e.views[:last]
	e.ids = e.ids[:last]
	e.self = e.self[:last]
	e.slots[id] = noSlot
	if int(id) < len(e.coordTab) {
		e.coordTab[id] = math.NaN()
	}
	delete(e.lying, id)
}

// exchangeRound is the membership phase for the gossiping substrates
// (Cyclon, Newscast), restructured from the serial permutation walk
// into compute/commit rounds. The exchange semantics are inlined over
// the arena: Cyclon ages the view and gossips with the oldest entry,
// merging with keep-known-duplicate semantics; Newscast gossips with a
// uniformly random entry, advertises itself in replies, and merges with
// keep-freshest-duplicate semantics. Both drop the partner's entry on a
// timed-out exchange (§3.3).
//
// Compute (parallel over slots): every node ages its view and selects
// its partner on its own per-cycle stream — each node touches only its
// own state — then its request payload (post-age view plus a fresh self
// entry) is frozen into a flat engine buffer. Requests to departed
// partners time out here (the initiator drops the stale entry and skips
// its exchange, exactly as in the serial engine).
//
// Commit half A (parallel over view OWNERS): each target absorbs one
// frozen request per initiator that selected it, in ascending
// initiator-slot order, and just before absorbing each request it
// materializes that initiator's reply from its LIVE view — so when
// several initiators fan in on one target in the same cycle, each gets
// a different reply, exactly as the serial walk produced. (Serving all
// of them the same frozen view instead measurably homogenizes views —
// clusters of nodes end up holding near-identical neighbor sets, which
// starves the ranking estimator of sample diversity and stalls its
// convergence.) The reply is staged in a worker-local buffer and then
// written over the initiator's request window — the request is dead
// once absorbed, so the round needs one flat payload store, not two.
// Every initiator has exactly one target, so no two workers ever write
// the same window.
//
// Commit half B (parallel over initiators, after a barrier): every
// initiator absorbs the reply now sitting in its own window.
//
// Each view's merge sequence — requests in initiator-slot order in half
// A, its own reply in half B — is fixed by slot order alone, so the
// round is bit-identical at any worker count. Every node still
// completes one full REQ′/ACK′ exchange per cycle ("each node updates
// its view before sending its random value or its attribute value",
// §4.5.2); what changed versus the serial engine is only that requests
// read start-of-round views and replies land after all requests.
func (e *Engine) exchangeRound() {
	n := len(e.ids)
	if n == 0 {
		return
	}
	stride := e.cfg.ViewSize + 1 // view entries + a self entry
	e.memTarget = grow(e.memTarget, n)
	e.reqLen = grow(e.reqLen, n)
	e.reqStore = grow(e.reqStore, n*stride)
	e.selfSnap = grow(e.selfSnap, n)
	for i := range e.ws {
		e.ws[i].dropped, e.ws[i].partDrops, e.ws[i].chaosDrops = 0, 0, 0
	}
	seed, cycle := e.cfg.Seed, uint64(e.cycle)
	chaosLoss := 0.0
	if e.chaosNow != nil {
		chaosLoss = e.chaosNow.Loss
	}
	newscast, isOrdering := e.newscast, e.ons != nil
	ref := e.cfg.ReferenceKernels
	e.parallelFor(n, func(w, lo, hi int) {
		ws := &e.ws[w]
		for s := lo; s < hi; s++ {
			id := e.ids[s]
			v := e.views[s]
			ws.stream = nodeStream(seed, uint64(id), cycle, phaseMembership)
			st := &ws.stream
			var pen view.Entry
			var pok bool
			switch {
			case newscast:
				v.AgeAll()
				pen, pok = v.Random(st)
			case ref:
				v.AgeAll()
				pen, pok = v.Oldest()
			default:
				// Cyclon always picks the oldest entry right after aging:
				// one fused read-modify pass instead of two view walks.
				pen, pok = v.AgeAllOldest()
			}
			tgt := int32(-1)
			if pok {
				if ts, live := e.slotOf(pen.ID); live {
					switch {
					case e.partitionBlocks(id, pen.ID):
						// The partner is unreachable across the partition:
						// the exchange is suppressed, but the view entry is
						// KEPT — the partner is alive, and those entries are
						// what re-merges the overlay when the partition
						// heals (no sim node ever re-bootstraps).
						ws.partDrops++
					case chaosLoss > 0 && st.Float64() < chaosLoss:
						// Chaos ate the view request; the exchange never
						// completes this cycle.
						ws.chaosDrops++
					default:
						tgt = ts
					}
				} else {
					// The partner departed: the request times out and the
					// initiator drops the stale entry (§3.3).
					ws.dropped++
					v.Remove(pen.ID)
				}
			}
			e.memTarget[s] = tgt
			var self view.Entry
			switch {
			case isOrdering && !ref:
				// Build the self entry from the dense mirrors — identical to
				// SelfEntry without pulling the ~170-byte Node cache line.
				self = view.Entry{ID: id, Attr: e.attrs[s], R: e.rs[s]}
			case isOrdering:
				self = e.ons[s].SelfEntry()
			default:
				self = e.rns[s].SelfEntry()
			}
			e.selfSnap[s] = self
			off := s * stride
			req := append(v.AppendEntries(e.reqStore[off:off:off+stride]), self)
			e.reqLen[s] = int32(len(req))
		}
	})
	for i := range e.ws {
		e.Delivered.Dropped += e.ws[i].dropped + e.ws[i].partDrops + e.ws[i].chaosDrops
		e.fc.PartitionDrops += e.ws[i].partDrops
		e.fc.ChaosDrops += e.ws[i].chaosDrops
	}

	// Deterministic per-target initiator lists: a counting sort of the
	// partner choices by target slot. initList[head[t]:head[t+1]] holds
	// the initiator slots of target t in ascending order.
	e.initHead = grow(e.initHead, n+1)
	e.initPos = grow(e.initPos, n)
	e.initList = grow(e.initList, n)
	head := e.initHead
	clear(head[:n+1])
	delivered := uint64(0)
	for s := 0; s < n; s++ {
		if t := e.memTarget[s]; t >= 0 {
			head[t+1]++
			delivered++
		}
	}
	for t := 0; t < n; t++ {
		head[t+1] += head[t]
	}
	pos := e.initPos
	copy(pos, head[:n])
	for s := 0; s < n; s++ {
		if t := e.memTarget[s]; t >= 0 {
			e.initList[pos[t]] = int32(s)
			pos[t]++
		}
	}
	// One request and one reply land per completed exchange.
	e.Delivered.ViewRequests += delivered
	e.Delivered.ViewReplies += delivered

	// Commit half A: targets reply and absorb, in initiator-slot order.
	// The Cyclon fast path fuses the reply capture into the merge itself
	// (MergeReply): the absorbed request's window is rewritten with the
	// target's pre-merge entries in the same kernel, so each commit
	// touches the arena block once and the reply needs no staging copy.
	// Newscast keeps the two-step path — its keep-freshest merge mutates
	// existing entries, so the reply must be captured before merging —
	// and the reference toggle keeps the scratch merge for both.
	e.parallelFor(n, func(w, lo, hi int) {
		ws := &e.ws[w]
		// g walks the worker's span of initList globally, one step per
		// (target, initiator) pair, so the next pair's request window —
		// a random ~670-byte read the merge would otherwise stall on —
		// can be touched one full merge ahead of its use. The ~400 ns a
		// MergeReply takes is enough to overlap the next window's cache
		// misses, and the warming loads land in ws.sink so they survive
		// compilation.
		g, ghi := head[lo], head[hi]
		for t := lo; t < hi; t++ {
			list := e.initList[head[t]:head[t+1]]
			if len(list) == 0 {
				continue
			}
			v := e.views[t]
			tid := e.ids[t]
			for _, s32 := range list {
				if g++; g < ghi {
					noff := int(e.initList[g]) * stride
					win := e.reqStore[noff : noff+stride]
					pf := uint64(0)
					for x := 0; x < len(win); x += 2 {
						pf += uint64(win[x].ID)
					}
					ws.sink += pf
				}
				s := int(s32)
				off := s * stride
				req := e.reqStore[off : off+int(e.reqLen[s])]
				if !newscast && !ref {
					e.reqLen[s] = int32(v.MergeReply(req, tid, &ws.merge, e.reqStore[off:off+stride]))
					continue
				}
				reply := v.AppendEntries(ws.replyBuf[:0])
				if newscast {
					reply = append(reply, e.selfSnap[t])
					v.MergeFreshUsing(req, tid, &ws.merge)
				} else {
					v.MergeUsing(req, tid, &ws.merge)
				}
				// The request is absorbed; its window now carries the
				// reply back to initiator s (len(reply) ≤ stride always).
				e.reqLen[s] = int32(copy(e.reqStore[off:off+stride], reply))
				ws.replyBuf = reply[:0]
			}
		}
	})
	// Commit half B: initiators absorb their replies.
	e.parallelFor(n, func(w, lo, hi int) {
		ws := &e.ws[w]
		for s := lo; s < hi; s++ {
			if e.memTarget[s] < 0 {
				continue
			}
			off := s * stride
			reply := e.reqStore[off : off+int(e.reqLen[s])]
			switch {
			case newscast:
				e.views[s].MergeFreshUsing(reply, e.ids[s], &ws.merge)
			case ref:
				e.views[s].MergeUsing(reply, e.ids[s], &ws.merge)
			default:
				e.views[s].MergeCompact(reply, e.ids[s], &ws.merge)
			}
		}
	})
}

// oracleRound is the membership phase for the uniform oracle (§5.3.2):
// every view is re-drawn uniformly at random from the live population.
// Draws run on per-node streams against the frozen self-entry cache, so
// the round parallelizes over slots with no exchange step at all — a
// fresh uniform sample, no messages — each worker using its own
// rejection-sampling scratch.
func (e *Engine) oracleRound() {
	k := e.cfg.ViewSize
	seed, cycle := e.cfg.Seed, uint64(e.cycle)
	ref := e.cfg.ReferenceKernels
	e.parallelFor(len(e.ids), func(w, lo, hi int) {
		ws := &e.ws[w]
		for s := lo; s < hi; s++ {
			id := e.ids[s]
			ws.stream = nodeStream(seed, uint64(id), cycle, phaseMembership)
			fresh := ws.sampler.sample(e.ids, e.self, &ws.stream, k, id)
			v := e.views[s]
			if ref {
				v.Clear()
				for _, en := range fresh {
					if en.ID != id {
						v.Add(en)
					}
				}
				continue
			}
			// The sample is distinct and already excludes id; the bulk
			// Reset is the Clear+Add loop minus its duplicate scans.
			v.Reset(fresh)
		}
	})
}

// deferredEnv is an overlapping or chaos-delayed protocol message held
// back until the end of the cycle (§4.5.2), flattened to its payload: a
// swap request's frozen coordinate and attribute (ordering) or the
// sender's attribute (ranking). The sender is recorded by arena slot:
// churn never runs mid-cycle, so slots are stable for the lifetime of
// the deferral.
type deferredEnv struct {
	from int32
	to   core.ID
	r    float64
	attr core.Attr
}

// protocolRound runs the slicing step of every node as a compute/commit
// pair, specialized per protocol — the engine stores protocol nodes by
// value and calls their unboxed tick/apply entry points, so the round
// allocates nothing and dispatches nothing.
//
// Compute (parallel over slots): every node's coordinate is frozen into
// a start-of-phase snapshot, then every initiator ticks on its own
// per-cycle stream against that snapshot — partner choice, outgoing
// payloads and (for mod-JK) the local-sequence ranking all read frozen
// state, so the expensive part of the phase uses all cores. Tick
// outputs land in flat per-slot stores: the swap target/payload for
// ordering, the two UPD targets for ranking.
//
// Commit (deterministic): deliveries apply in slot order.
// Non-overlapping ordering exchanges are atomic (§4.5.2, "the view is
// up-to-date when a message is sent"): the request re-reads the live
// random value and re-validates the swap predicate at send time, and a
// selection that went stale between compute and commit is abandoned
// unsent — which is why the atomic cycle model still produces zero
// unsuccessful swaps. Overlapping exchanges (probability
// Config.Concurrency, drawn on the initiator's stream) keep their
// stale-delivery semantics: they land after every immediate exchange,
// in an engine-stream shuffled order, where the swap predicate is
// re-evaluated against live state — failed predicates are the paper's
// unsuccessful swaps. Ranking updates are one-way and always useful, so
// they deliver immediately regardless of Concurrency (§5); on
// chaos-free cycles their commit additionally fans out over the workers
// (see commitRankingParallel), since which estimator absorbs which
// update is fixed by the compute phase alone.
func (e *Engine) protocolRound() {
	n := len(e.ids)
	if n == 0 {
		return
	}
	e.snapBuf = grow(e.snapBuf, n)
	if e.ons != nil {
		if e.cfg.ReferenceKernels {
			e.parallelFor(n, func(_, lo, hi int) {
				for s := lo; s < hi; s++ {
					e.snapBuf[s] = e.ons[s].Estimate()
				}
			})
		} else {
			// The dense mirror IS the live coordinate array; the snapshot
			// is one memmove instead of a strided walk over Node structs.
			copy(e.snapBuf[:n], e.rs)
		}
		e.tickOrdering(n)
		e.commitOrdering(n)
	} else {
		e.parallelFor(n, func(_, lo, hi int) {
			for s := lo; s < hi; s++ {
				e.snapBuf[s] = e.rns[s].Estimate()
			}
		})
		e.tickRanking(n)
		if e.chaosNow == nil {
			e.commitRankingParallel(n)
		} else {
			e.commitRankingSerial(n)
		}
	}
}

// tickOrdering runs the ordering compute phase: every node's partner
// choice and frozen swap payload, plus its overlap draw, in parallel.
func (e *Engine) tickOrdering(n int) {
	e.swapTo = grow(e.swapTo, n)
	e.swapR = grow(e.swapR, n)
	e.swapAttr = grow(e.swapAttr, n)
	e.overlapBuf = grow(e.overlapBuf, n)
	conc := e.cfg.Concurrency
	drawOverlap := conc > 0
	reader := (*snapReader)(e)
	// The fast tick only specializes SelectMaxGain — the policy whose
	// O(c²) rank count dominates million-node cycles. Random policies
	// draw from the stream inside selectPartner, so they keep the
	// reference entry point (which is already cheap for them).
	fast := !e.cfg.ReferenceKernels && e.cfg.Policy == ordering.SelectMaxGain
	var coords proto.CoordTable
	if fast {
		coords = e.refreshCoordTab(n)
	}
	seed, cycle := e.cfg.Seed, uint64(e.cycle)
	e.parallelFor(n, func(w, lo, hi int) {
		ws := &e.ws[w]
		for s := lo; s < hi; s++ {
			ws.stream = nodeStream(seed, uint64(e.ids[s]), cycle, phaseProtocol)
			st := &ws.stream
			e.overlapBuf[s] = drawOverlap && st.Float64() < conc
			var (
				to  core.ID
				req proto.SwapRequest
				ok  bool
			)
			if fast {
				to, req, ok = e.ons[s].TickSwapFast(e.snapBuf[s], coords, &ws.oscr)
			} else {
				to, req, ok = e.ons[s].TickSwap(reader, st, &ws.oscr)
			}
			if !ok {
				e.swapTo[s] = 0
				continue
			}
			e.swapTo[s], e.swapR[s], e.swapAttr[s] = to, req.R, req.Attr
		}
	})
}

// refreshCoordTab rebuilds the ID-indexed coordinate table from the
// cycle's snapshot: the growth tail (IDs minted since the table last
// grew) initializes to NaN, every live ID takes its slot's snapshot
// value, and departed IDs keep the NaN removeNode pinned. Writes are
// per-slot disjoint (IDs are unique), so the fill parallelizes without
// affecting worker-count invariance.
func (e *Engine) refreshCoordTab(n int) proto.CoordTable {
	if len(e.coordTab) < len(e.slots) {
		old := len(e.coordTab)
		if cap(e.coordTab) < len(e.slots) {
			// Reallocation loses the departed-ID NaN pins; refill from
			// scratch (the live fill below rewrites every live ID anyway).
			e.coordTab = make(proto.CoordTable, len(e.slots))
			old = 0
		} else {
			e.coordTab = e.coordTab[:len(e.slots)]
		}
		nan := math.NaN()
		for i := old; i < len(e.coordTab); i++ {
			e.coordTab[i] = nan
		}
	}
	e.parallelFor(n, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			e.coordTab[e.ids[s]] = e.snapBuf[s]
		}
	})
	return e.coordTab
}

// commitOrdering applies the ordering deliveries serially in slot
// order: swap replies mutate the initiator's random value, which later
// slots' commit-time predicate checks must observe.
func (e *Engine) commitOrdering(n int) {
	overlapping := e.deferredBuf[:0]
	for s := 0; s < n; s++ {
		to := e.swapTo[s]
		if to == 0 {
			continue
		}
		if e.overlapBuf[s] {
			overlapping = append(overlapping, deferredEnv{from: int32(s), to: to, r: e.swapR[s], attr: e.swapAttr[s]})
			continue
		}
		if e.partitionBlocks(e.ids[s], to) {
			e.fc.PartitionDrops++
			e.Delivered.Dropped++
			continue
		}
		if ch := e.chaosNow; ch != nil {
			// Chaos draws run on the engine's serial stream, exactly
			// like the overlapping-delivery shuffle — this loop is
			// slot-ordered and single-threaded, so the draw sequence
			// is worker-count independent. A delayed request joins
			// the overlapping set: it lands at end of cycle with the
			// stale-delivery semantics overlap already has.
			if ch.Loss > 0 && e.rng.Float64() < ch.Loss {
				e.fc.ChaosDrops++
				e.Delivered.Dropped++
				continue
			}
			if ch.Delay > 0 && e.rng.Float64() < ch.Delay {
				e.fc.ChaosDelays++
				overlapping = append(overlapping, deferredEnv{from: int32(s), to: to, r: e.swapR[s], attr: e.swapAttr[s]})
				continue
			}
		}
		// Atomic exchange: send the live value, and only if the swap
		// still helps.
		r := e.rs[s]
		attr := e.swapAttr[s]
		if ts, live := e.slotOf(to); live && !e.swapStillHelps(ts, r, attr) {
			e.ons[s].AbandonSwap()
			continue
		}
		e.deliverSwap(int32(s), to, r, attr)
		if ch := e.chaosNow; ch != nil && ch.Dup > 0 && e.rng.Float64() < ch.Dup {
			// Duplication: the same request lands twice.
			e.fc.ChaosDups++
			e.deliverSwap(int32(s), to, r, attr)
		}
	}
	e.flushDeferred(overlapping)
}

// flushDeferred delivers the cycle's overlapping and chaos-delayed
// messages in an engine-stream shuffled order; by then their payload
// and partner choice may be stale.
func (e *Engine) flushDeferred(overlapping []deferredEnv) {
	e.deferredBuf = overlapping[:0]
	e.rng.Shuffle(len(overlapping), func(i, j int) {
		overlapping[i], overlapping[j] = overlapping[j], overlapping[i]
	})
	isOrdering := e.ons != nil
	for _, d := range overlapping {
		if e.partitionBlocks(e.ids[d.from], d.to) {
			e.fc.PartitionDrops++
			e.Delivered.Dropped++
			continue
		}
		if ch := e.chaosNow; ch != nil && ch.Loss > 0 && e.rng.Float64() < ch.Loss {
			e.fc.ChaosDrops++
			e.Delivered.Dropped++
			continue
		}
		if !isOrdering {
			e.deliverRank(d.from, d.to, d.attr)
			continue
		}
		r := d.r
		if !e.cfg.StalePayloads {
			// The exchange executes on live values; only the partner
			// selection was stale. This keeps the swap two-sided and the
			// random-value multiset conserved, matching the paper's
			// Fig. 4(d).
			r = e.rs[d.from]
		}
		e.deliverSwap(d.from, d.to, r, d.attr)
	}
}

// swapStillHelps re-evaluates the receiver-side swap predicate of a
// refreshed request against the target's live state (read from the
// dense mirrors): the commit-time validation of an atomic exchange.
func (e *Engine) swapStillHelps(ts int32, r float64, attr core.Attr) bool {
	return ordering.Misplaced(e.attrs[ts], attr, e.rs[ts], r)
}

// deliverSwap routes one swap request to its destination and its reply
// straight back (the REQ/ACK round of Fig. 2). The initiator is live by
// construction — it ticked this cycle and churn never runs mid-cycle —
// so only the target can have departed.
func (e *Engine) deliverSwap(from int32, to core.ID, r float64, attr core.Attr) {
	ts, ok := e.slotOf(to)
	if !ok {
		e.Delivered.Dropped++
		return
	}
	e.Delivered.SwapRequests++
	rep, adopted := e.ons[ts].ApplySwapRequest(e.ids[from], proto.SwapRequest{R: r, Attr: attr})
	// Maintain the engine-side mirrors at the one choke point swaps
	// mutate coordinates through: the receiver adopted r (or refused),
	// and the initiator's reply application is read back below. The
	// counters mirror the Stats sums the unsuccessful-swap series needs.
	e.recvTotal++
	if adopted {
		e.rs[ts] = r
	} else {
		e.failRecvTotal++
	}
	e.Delivered.SwapReplies++
	e.ons[from].ApplySwapReply(to, rep)
	e.rs[from] = e.ons[from].Estimate()
}

// deliverRank routes one UPD message (Fig. 5) carrying the sender's
// attribute to its destination.
func (e *Engine) deliverRank(from int32, to core.ID, attr core.Attr) {
	ts, ok := e.slotOf(to)
	if !ok {
		e.Delivered.Dropped++
		return
	}
	e.Delivered.RankUpdates++
	e.rns[ts].ApplyRankUpdate(e.ids[from], attr)
}

// tickRanking runs the ranking compute phase: the view scan feeding
// each estimator and the two UPD target choices, in parallel. Targets
// land in the flat updTo store, stride 2 per slot, 0 = no update.
func (e *Engine) tickRanking(n int) {
	e.updTo = grow(e.updTo, 2*n)
	reader := (*snapReader)(e)
	seed, cycle := e.cfg.Seed, uint64(e.cycle)
	// The fast tick reads neighbor estimates off the ID-indexed snapshot
	// table instead of dispatching through the snapshot reader — same
	// answers, half the dependent cache misses per neighbor.
	fast := !e.cfg.ReferenceKernels
	var coords proto.CoordTable
	if fast {
		coords = e.refreshCoordTab(n)
	}
	e.parallelFor(n, func(w, lo, hi int) {
		ws := &e.ws[w]
		for s := lo; s < hi; s++ {
			ws.stream = nodeStream(seed, uint64(e.ids[s]), cycle, phaseProtocol)
			var j1, j2 core.ID
			var ok bool
			if fast {
				j1, j2, ok = e.rns[s].TickTargetsFast(coords, &ws.stream, &ws.rscr)
			} else {
				j1, j2, ok = e.rns[s].TickTargets(reader, &ws.stream, &ws.rscr)
			}
			if !ok {
				e.updTo[2*s], e.updTo[2*s+1] = 0, 0
				continue
			}
			e.updTo[2*s], e.updTo[2*s+1] = j1, j2
		}
	})
}

// commitRankingSerial applies the ranking deliveries in slot order on
// the engine's serial stream — the path chaos windows require, since
// loss/delay/dup draws must be worker-count independent.
func (e *Engine) commitRankingSerial(n int) {
	overlapping := e.deferredBuf[:0]
	ch := e.chaosNow
	for s := 0; s < n; s++ {
		attr := e.rns[s].Member().Attr
		for k := 0; k < 2; k++ {
			to := e.updTo[2*s+k]
			if to == 0 {
				continue
			}
			if e.partitionBlocks(e.ids[s], to) {
				e.fc.PartitionDrops++
				e.Delivered.Dropped++
				continue
			}
			if ch != nil {
				if ch.Loss > 0 && e.rng.Float64() < ch.Loss {
					e.fc.ChaosDrops++
					e.Delivered.Dropped++
					continue
				}
				if ch.Delay > 0 && e.rng.Float64() < ch.Delay {
					e.fc.ChaosDelays++
					overlapping = append(overlapping, deferredEnv{from: int32(s), to: to, attr: attr})
					continue
				}
			}
			e.deliverRank(int32(s), to, attr)
			if ch != nil && ch.Dup > 0 && e.rng.Float64() < ch.Dup {
				e.fc.ChaosDups++
				e.deliverRank(int32(s), to, attr)
			}
		}
	}
	e.flushDeferred(overlapping)
}

// commitRankingParallel applies the ranking deliveries across the
// workers. Legal on chaos-free cycles because the commit then draws no
// randomness and each delivery writes only its TARGET's estimator state
// while reading its sender's attribute, which is immutable for the rest
// of the cycle — so deliveries to different targets are independent. A
// serial counting pre-pass resolves each update's destination slot
// (tallying partition and departed-target drops in slot order, exactly
// as the serial path would) and builds per-target delivery lists in
// ascending sender order; each worker then applies its targets' lists.
// Per-target delivery order equals the serial order restricted to that
// target, and estimator absorption is per-target state, so the result
// is bit-identical to commitRankingSerial.
func (e *Engine) commitRankingParallel(n int) {
	e.rankDst = grow(e.rankDst, 2*n)
	dst := e.rankDst
	delivered := uint64(0)
	for s := 0; s < n; s++ {
		for k := 0; k < 2; k++ {
			i := 2*s + k
			to := e.updTo[i]
			if to == 0 {
				dst[i] = -1
				continue
			}
			if e.partitionBlocks(e.ids[s], to) {
				e.fc.PartitionDrops++
				e.Delivered.Dropped++
				dst[i] = -1
				continue
			}
			ts, live := e.slotOf(to)
			if !live {
				e.Delivered.Dropped++
				dst[i] = -1
				continue
			}
			dst[i] = ts
			delivered++
		}
	}
	e.Delivered.RankUpdates += delivered
	// Counting sort of the resolved updates by target slot; the encoded
	// index 2·sender+k ascends within each target's list, preserving the
	// serial delivery order.
	e.initHead = grow(e.initHead, n+1)
	e.initPos = grow(e.initPos, n)
	e.initList = grow(e.initList, 2*n)
	head := e.initHead
	clear(head[:n+1])
	for i := 0; i < 2*n; i++ {
		if t := dst[i]; t >= 0 {
			head[t+1]++
		}
	}
	for t := 0; t < n; t++ {
		head[t+1] += head[t]
	}
	pos := e.initPos
	copy(pos, head[:n])
	for i := 0; i < 2*n; i++ {
		if t := dst[i]; t >= 0 {
			e.initList[pos[t]] = int32(i)
			pos[t]++
		}
	}
	e.parallelFor(n, func(_, lo, hi int) {
		for t := lo; t < hi; t++ {
			for _, enc := range e.initList[head[t]:head[t+1]] {
				s := enc >> 1
				e.rns[t].ApplyRankUpdate(e.ids[s], e.rns[s].Member().Attr)
			}
		}
	})
}

// snapReader serves the phase-start coordinate snapshot captured by
// protocolRound, resolving IDs to slots without hashing. Every
// compute-phase tick reads through it: the snapshot is immutable for
// the duration of the parallel pass, which is what makes concurrent
// ticks race-free AND order-independent.
type snapReader Engine

// R implements proto.StateReader.
func (sr *snapReader) R(id core.ID) (float64, bool) {
	e := (*Engine)(sr)
	s, ok := e.slotOf(id)
	if !ok {
		return 0, false
	}
	return e.snapBuf[s], true
}

// record appends the cycle's measurements to the result series. The
// per-node reads (believed slices, rank tallies) fan out over the
// workers; sums reduce over fixed chunks in chunk order (floats) or
// per-worker tallies (integers), so recorded values are independent of
// the worker count. SDM reads the incrementally maintained attribute
// order: O(n), no sort.
func (e *Engine) record() {
	n := len(e.ids)
	e.believedBuf = grow(e.believedBuf, n)
	believed := e.believedBuf
	switch {
	case e.cfg.ReferenceKernels && e.ons != nil:
		e.parallelFor(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				believed[i] = e.ons[e.slots[e.members[i].ID]].SliceIndex()
			}
		})
	case e.ons != nil:
		// Two passes: believed slices materialize in slot order first —
		// sequential reads, and a node whose coordinate is unchanged
		// since the last measurement reuses its cached partition index
		// (at steady state that is nearly everyone) — then the
		// members-order gather reads 4-byte staged values instead of
		// striding 170-byte Node structs.
		sb := grow(e.slotBelieved, n)
		e.slotBelieved = sb
		e.parallelFor(n, func(_, lo, hi int) {
			for s := lo; s < hi; s++ {
				if r := e.rs[s]; r != e.sliceR[s] {
					e.sliceR[s] = r
					e.sliceIdx[s] = int32(e.part.Index(r))
				}
				sb[s] = e.sliceIdx[s]
			}
		})
		e.parallelFor(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				believed[i] = int(sb[e.slots[e.members[i].ID]])
			}
		})
	case e.cfg.ReferenceKernels:
		e.parallelFor(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				believed[i] = e.rns[e.slots[e.members[i].ID]].SliceIndex()
			}
		})
	default:
		sb := grow(e.slotBelieved, n)
		e.slotBelieved = sb
		e.parallelFor(n, func(_, lo, hi int) {
			for s := lo; s < hi; s++ {
				sb[s] = int32(e.rns[s].SliceIndex())
			}
		})
		e.parallelFor(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				believed[i] = int(sb[e.slots[e.members[i].ID]])
			}
		})
	}
	sdm := e.chunkedSum(n, func(lo, hi int) float64 {
		return metrics.SDMSortedRange(believed, e.part, lo, hi)
	})
	e.sdm.Add(e.cycle, sdm)
	e.size.Add(e.cycle, float64(n))
	e.recordPollution(believed)
	if e.tel != nil {
		e.tel.cycle.Set(float64(e.cycle))
		e.tel.nodes.Set(float64(n))
		e.tel.sdm.Set(sdm)
		e.publishFaultTelemetry()
	}
	if e.cfg.RecordGDM {
		gdm := e.measureGDM()
		e.gdm.Add(e.cycle, gdm)
		if e.tel != nil {
			e.tel.gdm.Set(gdm)
		}
	}
	if e.ons != nil {
		var received, failed uint64
		if e.cfg.ReferenceKernels {
			for i := range e.ws {
				e.ws[i].reqReceived, e.ws[i].reqFailed = 0, 0
			}
			e.parallelFor(n, func(w, lo, hi int) {
				ws := &e.ws[w]
				var recv, fail uint64
				for i := lo; i < hi; i++ {
					st := e.ons[i].Stats()
					recv += st.ReqReceived
					fail += st.SwapFailedAtReceiver
				}
				ws.reqReceived, ws.reqFailed = recv, fail
			})
			for i := range e.ws {
				received += e.ws[i].reqReceived
				failed += e.ws[i].reqFailed
			}
		} else {
			// The engine-side delivery counters hold exactly the sums the
			// Stats scan produces: deliverSwap is the only increment site,
			// and removeNode subtracts a departing node's counts so the
			// totals stay live-only — the same population the scan walks.
			received, failed = e.recvTotal, e.failRecvTotal
		}
		dr, df := received-min(received, e.prevReqReceived), failed-min(failed, e.prevFailed)
		pct := 0.0
		if dr > 0 {
			pct = 100 * float64(df) / float64(dr)
		}
		e.unsucc.Add(e.cycle, pct)
		e.prevReqReceived, e.prevFailed = received, failed
	}
}

// measureGDM computes the global disorder measure (§4.2) from the
// engine's own rank buffers: attribute ranks come straight off the
// incrementally maintained membership order (no sort), coordinate ranks
// from a bucket sort of the (R, ID) keys, and the squared-distance sum
// reduces over fixed chunks. Equivalent to metrics.GDM over States().
//
// The bucket sort replaces the comparison sort that dominated
// RecordGDM runs at scale (profiling at N=100k put it at over a third
// of the cycle): coordinates live in [0,1], so slots scatter into n
// buckets by ⌊r·n⌋ with a counting sort — stable in slot order — and
// each bucket's segment is refined by (R, ID) independently. ⌊r·n⌋ is
// monotone in r and equal coordinates share a bucket, so sorted
// segments concatenate into exactly the permutation the full sort
// produced — a strict total order has only one — while near-uniform
// coordinates (what the protocols converge to) make every segment O(1)
// and the whole pass O(n), with the refinement fanning out over the
// workers. Degenerate distributions (e.g. ranking's first cycles, when
// every estimate is still 0) collapse into one segment and fall back to
// the comparison sort's complexity, never worse.
func (e *Engine) measureGDM() float64 {
	n := len(e.ids)
	if n == 0 {
		return 0
	}
	e.alphaBuf = grow(e.alphaBuf, n)
	e.rhoBuf = grow(e.rhoBuf, n)
	e.rBuf = grow(e.rBuf, n)
	e.idxBuf = grow(e.idxBuf, n)
	e.bucketBuf = grow(e.bucketBuf, n)
	e.bucketHead = grow(e.bucketHead, n+1)
	alpha, rho, r, idx := e.alphaBuf, e.rhoBuf, e.rBuf, e.idxBuf
	bucket, head := e.bucketBuf, e.bucketHead
	e.parallelFor(n, func(_, lo, hi int) {
		for pos := lo; pos < hi; pos++ {
			alpha[e.slots[e.members[pos].ID]] = int32(pos + 1)
		}
	})
	fn := float64(n)
	assign := func(s int, ri float64) {
		r[s] = ri
		b := int(ri * fn)
		if b < 0 {
			b = 0
		} else if b >= n {
			b = n - 1
		}
		bucket[s] = int32(b)
	}
	if e.ons != nil {
		e.parallelFor(n, func(_, lo, hi int) {
			for s := lo; s < hi; s++ {
				assign(s, e.ons[s].Estimate())
			}
		})
	} else {
		e.parallelFor(n, func(_, lo, hi int) {
			for s := lo; s < hi; s++ {
				assign(s, e.rns[s].Estimate())
			}
		})
	}
	// Counting scatter, stable in ascending slot order.
	clear(head[:n+1])
	for s := 0; s < n; s++ {
		head[bucket[s]+1]++
	}
	for b := 0; b < n; b++ {
		head[b+1] += head[b]
	}
	pos := grow(e.initPos, n)
	e.initPos = pos
	copy(pos, head[:n])
	for s := 0; s < n; s++ {
		b := bucket[s]
		idx[pos[b]] = int32(s)
		pos[b]++
	}
	// Per-bucket refinement: independent segments, any worker split.
	e.parallelFor(n, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			if seg := idx[head[b]:head[b+1]]; len(seg) > 1 {
				sortByRID(seg, r, e.ids)
			}
		}
	})
	e.parallelFor(n, func(_, lo, hi int) {
		for pos := lo; pos < hi; pos++ {
			rho[idx[pos]] = int32(pos + 1)
		}
	})
	return e.chunkedSum(n, func(lo, hi int) float64 {
		return metrics.GDMRange(alpha, rho, lo, hi)
	}) / float64(n)
}

// sortByRID orders a segment of arena slots by (coordinate, ID): the
// random-value sequence of the GDM definition, ties broken by the
// unique identifier. Buckets are tiny at steady state, so small
// segments take an insertion sort instead of sort.Slice's machinery.
func sortByRID(seg []int32, r []float64, ids []core.ID) {
	less := func(a, b int32) bool {
		if r[a] != r[b] {
			return r[a] < r[b]
		}
		return ids[a] < ids[b]
	}
	if len(seg) <= 24 {
		for i := 1; i < len(seg); i++ {
			for j := i; j > 0 && less(seg[j], seg[j-1]); j-- {
				seg[j], seg[j-1] = seg[j-1], seg[j]
			}
		}
		return
	}
	sort.Slice(seg, func(i, j int) bool { return less(seg[i], seg[j]) })
}

// States snapshots every live node for measurement, in arena order. The
// caller owns the returned slice.
func (e *Engine) States() []metrics.NodeState {
	states := make([]metrics.NodeState, 0, len(e.ids))
	if e.ons != nil {
		for i := range e.ons {
			n := &e.ons[i]
			states = append(states, metrics.NodeState{
				Member:     n.Member(),
				R:          n.Estimate(),
				SliceIndex: n.SliceIndex(),
			})
		}
	} else {
		for i := range e.rns {
			n := &e.rns[i]
			states = append(states, metrics.NodeState{
				Member:     n.Member(),
				R:          n.Estimate(),
				SliceIndex: n.SliceIndex(),
			})
		}
	}
	return states
}

// Cycle returns the number of completed cycles.
func (e *Engine) Cycle() int { return e.cycle }

// N returns the current live system size.
func (e *Engine) N() int { return len(e.ids) }

// Partition returns the slice partition in force.
func (e *Engine) Partition() core.Partition { return e.part }

// Workers returns the engine's resolved compute-worker count.
func (e *Engine) Workers() int { return e.workers }

// SDM returns the slice disorder series (one point per completed cycle,
// plus the initial state at cycle 0).
func (e *Engine) SDM() metrics.Series { return e.sdm }

// GDM returns the global disorder series (empty unless RecordGDM).
func (e *Engine) GDM() metrics.Series { return e.gdm }

// UnsuccessfulPct returns the per-cycle percentage of swap requests
// whose predicate had expired on arrival (Fig. 4(c)).
func (e *Engine) UnsuccessfulPct() metrics.Series { return e.unsucc }

// Size returns the live-population series.
func (e *Engine) Size() metrics.Series { return e.size }

// OrderingStats sums the event counters over all live ordering nodes.
func (e *Engine) OrderingStats() ordering.Stats {
	var total ordering.Stats
	for i := range e.ons {
		st := e.ons[i].Stats()
		total.ReqSent += st.ReqSent
		total.ReqReceived += st.ReqReceived
		total.SwapFailedAtReceiver += st.SwapFailedAtReceiver
		total.SwapFailedAtInitiator += st.SwapFailedAtInitiator
		total.SwapAbandonedAtSender += st.SwapAbandonedAtSender
		total.Swapped += st.Swapped
	}
	return total
}

// Result bundles the series of a completed run.
type Result struct {
	SDM             metrics.Series
	GDM             metrics.Series
	UnsuccessfulPct metrics.Series
	Size            metrics.Series
	// Pollution is the per-cycle byzantine slice pollution (empty unless
	// the run's fault plan had a Byzantine family).
	Pollution metrics.Series
	Messages  MessageCounts
	// Faults tallies the injections the run's fault plan performed.
	Faults FaultCounts
	// Mem is the engine's memory budget at the end of the run.
	Mem MemReport
	// Phases is the cumulative per-phase wall-clock breakdown of the run
	// — every perf artifact carries its own "where the cycle time goes".
	Phases PhaseNanos
	FinalN int
	Cycles int
}

// Run builds an engine from cfg, advances it the given number of cycles
// and returns the recorded series.
func Run(cfg Config, cycles int) (*Result, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	e.Run(cycles)
	return &Result{
		SDM:             e.SDM(),
		GDM:             e.GDM(),
		UnsuccessfulPct: e.UnsuccessfulPct(),
		Size:            e.Size(),
		Pollution:       e.Pollution(),
		Messages:        e.Delivered,
		Faults:          e.FaultTally(),
		Mem:             e.MemReport(),
		Phases:          e.Phases(),
		FinalN:          e.N(),
		Cycles:          e.Cycle(),
	}, nil
}
