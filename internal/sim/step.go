package sim

import (
	"github.com/gossipkit/slicing/internal/core"
	"github.com/gossipkit/slicing/internal/metrics"
	"github.com/gossipkit/slicing/internal/ordering"
	"github.com/gossipkit/slicing/internal/proto"
)

// Step runs one simulation cycle: churn, membership exchanges, slicing
// exchanges (with the configured concurrency model), then measurement.
func (e *Engine) Step() {
	e.applyChurn()
	perm := e.permutedIDs()
	e.membershipPhase(perm)
	e.protocolPhase(perm)
	e.cycle++
	e.record()
}

// Run advances the simulation by the given number of cycles.
func (e *Engine) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		e.Step()
	}
}

// permutedIDs returns the live node ids in a fresh random order. The
// iteration base is the deterministic insertion order, so equal seeds
// yield equal runs. The shuffle replicates rand.Perm's draw sequence
// in-place over a reusable buffer, so a seeded run's trajectory is
// unchanged while the per-cycle []int allocation of rand.Perm is gone.
func (e *Engine) permutedIDs() []core.ID {
	perm := e.permBuf[:0]
	for i, id := range e.order {
		j := e.rng.Intn(i + 1)
		perm = append(perm, id)
		if j != i {
			perm[i] = perm[j]
			perm[j] = id
		}
	}
	e.permBuf = perm
	return perm
}

// applyChurn executes the cycle's churn event (§3.3): leavers vanish
// without notice, joiners arrive with fresh state and a bootstrap view.
func (e *Engine) applyChurn() {
	if e.cfg.Schedule == nil || e.cfg.Pattern == nil {
		return
	}
	ev := e.cfg.Schedule.At(e.cycle, len(e.order))
	if ev.Leave == 0 && ev.Join == 0 {
		return
	}
	if ev.Leave > 0 {
		members := e.sortedMembers()
		for _, id := range e.cfg.Pattern.PickLeavers(e.rng, members, ev.Leave) {
			e.removeNode(id)
		}
	}
	joined := make([]core.ID, 0, ev.Join)
	for i := 0; i < ev.Join; i++ {
		attr := e.cfg.Pattern.JoinAttr(e.rng, e.sortedMembers())
		if err := e.addNode(attr); err != nil {
			// addNode only fails on invalid static configuration, which
			// New has already validated.
			panic(err)
		}
		joined = append(joined, e.nextID)
	}
	e.bootstrapViews(joined...)
}

// sortedMembers returns the live membership in attribute order. The
// slice is a reusable engine buffer, valid until the next call.
func (e *Engine) sortedMembers() []core.Member {
	members := e.membersBuf[:0]
	for _, id := range e.order {
		members = append(members, e.byID[id].node.Member())
	}
	core.SortMembers(members)
	e.membersBuf = members
	return members
}

func (e *Engine) removeNode(id core.ID) {
	if _, ok := e.byID[id]; !ok {
		return
	}
	delete(e.byID, id)
	for i, other := range e.order {
		if other == id {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
}

// membershipPhase completes one view exchange per node, synchronously
// ("each node updates its view before sending its random value or its
// attribute value", §4.5.2). Requests to departed nodes time out,
// dropping the stale entry.
func (e *Engine) membershipPhase(perm []core.ID) {
	for _, id := range perm {
		sn, ok := e.byID[id]
		if !ok {
			continue // removed by churn mid-iteration safety
		}
		for _, env := range sn.mem.Tick(e.rng) {
			req, ok := env.Msg.(proto.ViewRequest)
			if !ok {
				continue
			}
			target, live := e.byID[env.To]
			if !live {
				e.Delivered.Dropped++
				sn.mem.OnTimeout(env.To)
				continue
			}
			e.Delivered.ViewRequests++
			for _, rep := range target.mem.HandleRequest(id, req, e.rng) {
				repMsg, ok := rep.Msg.(proto.ViewReply)
				if !ok {
					continue
				}
				e.Delivered.ViewReplies++
				sn.mem.HandleReply(env.To, repMsg)
			}
		}
	}
}

// deferredEnv is an overlapping message held back until the end of the
// cycle (§4.5.2).
type deferredEnv struct {
	from core.ID
	env  proto.Envelope
}

// protocolPhase runs the slicing step of every node. Ordering exchanges
// honor the concurrency model; ranking updates are one-way and always
// valid, so they deliver immediately (§5: "concurrency has no impact on
// convergence speed").
func (e *Engine) protocolPhase(perm []core.ID) {
	live := e.liveReader()
	var snapshot proto.MapReader
	if e.cfg.Protocol == Ordering && e.cfg.Concurrency > 0 {
		snapshot = e.snapshotR()
	}
	overlapping := e.deferredBuf[:0]
	for _, id := range perm {
		sn, ok := e.byID[id]
		if !ok {
			continue
		}
		overlap := snapshot != nil && e.rng.Float64() < e.cfg.Concurrency
		reader := proto.StateReader(live)
		if overlap {
			reader = snapshot
		}
		envs := sn.node.Tick(reader, e.rng)
		for _, env := range envs {
			if overlap {
				overlapping = append(overlapping, deferredEnv{from: id, env: env})
				continue
			}
			e.deliver(id, env)
		}
	}
	e.deferredBuf = overlapping[:0]
	// Overlapping messages land in random order at the end of the cycle;
	// by then their payload and partner choice may be stale.
	e.rng.Shuffle(len(overlapping), func(i, j int) {
		overlapping[i], overlapping[j] = overlapping[j], overlapping[i]
	})
	for _, d := range overlapping {
		sn, stillLive := e.byID[d.from]
		if !stillLive {
			continue
		}
		env := d.env
		if req, ok := env.Msg.(proto.SwapRequest); ok && !e.cfg.StalePayloads {
			// The exchange executes on live values; only the partner
			// selection was stale. This keeps the swap two-sided and the
			// random-value multiset conserved, matching the paper's
			// Fig. 4(d).
			req.R = sn.node.Estimate()
			env.Msg = req
		}
		e.deliver(d.from, env)
	}
}

// deliver routes one protocol envelope to its destination, delivering
// any replies back to the sender (the REQ/ACK round of Fig. 2, or the
// one-way UPD of Fig. 5).
func (e *Engine) deliver(from core.ID, env proto.Envelope) {
	target, ok := e.byID[env.To]
	if !ok {
		e.Delivered.Dropped++
		return
	}
	e.countMessage(env.Msg)
	for _, rep := range target.node.Handle(from, env.Msg, e.rng) {
		sender, ok := e.byID[rep.To]
		if !ok {
			e.Delivered.Dropped++
			continue
		}
		e.countMessage(rep.Msg)
		sender.node.Handle(env.To, rep.Msg, e.rng)
	}
}

func (e *Engine) countMessage(msg proto.Message) {
	switch msg.(type) {
	case proto.SwapRequest:
		e.Delivered.SwapRequests++
	case proto.SwapReply:
		e.Delivered.SwapReplies++
	case proto.RankUpdate:
		e.Delivered.RankUpdates++
	case proto.ViewRequest:
		e.Delivered.ViewRequests++
	case proto.ViewReply:
		e.Delivered.ViewReplies++
	}
}

// liveReader resolves coordinates from the nodes' current state: the
// cycle model's "views are up to date" assumption.
func (e *Engine) liveReader() proto.FuncReader {
	return func(id core.ID) (float64, bool) {
		sn, ok := e.byID[id]
		if !ok {
			return 0, false
		}
		return sn.node.Estimate(), true
	}
}

// snapshotR captures every node's coordinate at the start of the cycle
// into a reusable map (cleared, not reallocated, between cycles).
func (e *Engine) snapshotR() proto.MapReader {
	if e.snapBuf == nil {
		e.snapBuf = make(proto.MapReader, len(e.order))
	} else {
		clear(e.snapBuf)
	}
	for _, id := range e.order {
		e.snapBuf[id] = e.byID[id].node.Estimate()
	}
	return e.snapBuf
}

// record appends the cycle's measurements to the result series.
func (e *Engine) record() {
	states := e.liveStates()
	e.sdm.Add(e.cycle, e.meter.SDM(states, e.part))
	e.size.Add(e.cycle, float64(len(states)))
	if e.cfg.RecordGDM {
		e.gdm.Add(e.cycle, e.meter.GDM(states))
	}
	if e.cfg.Protocol == Ordering {
		var received, failed uint64
		for _, id := range e.order {
			if on, ok := e.byID[id].orderingNode(); ok {
				st := on.Stats()
				received += st.ReqReceived
				failed += st.SwapFailedAtReceiver
			}
		}
		dr, df := received-min64(received, e.prevReqReceived), failed-min64(failed, e.prevFailed)
		pct := 0.0
		if dr > 0 {
			pct = 100 * float64(df) / float64(dr)
		}
		e.unsucc.Add(e.cycle, pct)
		e.prevReqReceived, e.prevFailed = received, failed
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// States snapshots every live node for measurement. The caller owns the
// returned slice.
func (e *Engine) States() []metrics.NodeState {
	states := make([]metrics.NodeState, 0, len(e.order))
	return e.appendStates(states)
}

// liveStates is States over a reusable engine buffer, for the per-cycle
// measurements; the result is valid until the next call.
func (e *Engine) liveStates() []metrics.NodeState {
	e.statesBuf = e.appendStates(e.statesBuf[:0])
	return e.statesBuf
}

func (e *Engine) appendStates(states []metrics.NodeState) []metrics.NodeState {
	for _, id := range e.order {
		sn := e.byID[id]
		states = append(states, metrics.NodeState{
			Member:     sn.node.Member(),
			R:          sn.node.Estimate(),
			SliceIndex: sn.node.SliceIndex(),
		})
	}
	return states
}

// Cycle returns the number of completed cycles.
func (e *Engine) Cycle() int { return e.cycle }

// N returns the current live system size.
func (e *Engine) N() int { return len(e.order) }

// Partition returns the slice partition in force.
func (e *Engine) Partition() core.Partition { return e.part }

// SDM returns the slice disorder series (one point per completed cycle,
// plus the initial state at cycle 0).
func (e *Engine) SDM() metrics.Series { return e.sdm }

// GDM returns the global disorder series (empty unless RecordGDM).
func (e *Engine) GDM() metrics.Series { return e.gdm }

// UnsuccessfulPct returns the per-cycle percentage of swap requests
// whose predicate had expired on arrival (Fig. 4(c)).
func (e *Engine) UnsuccessfulPct() metrics.Series { return e.unsucc }

// Size returns the live-population series.
func (e *Engine) Size() metrics.Series { return e.size }

// OrderingStats sums the event counters over all live ordering nodes.
func (e *Engine) OrderingStats() ordering.Stats {
	var total ordering.Stats
	for _, id := range e.order {
		if on, ok := e.byID[id].orderingNode(); ok {
			st := on.Stats()
			total.ReqSent += st.ReqSent
			total.ReqReceived += st.ReqReceived
			total.SwapFailedAtReceiver += st.SwapFailedAtReceiver
			total.SwapFailedAtInitiator += st.SwapFailedAtInitiator
			total.Swapped += st.Swapped
		}
	}
	return total
}

// Result bundles the series of a completed run.
type Result struct {
	SDM             metrics.Series
	GDM             metrics.Series
	UnsuccessfulPct metrics.Series
	Size            metrics.Series
	Messages        MessageCounts
	FinalN          int
	Cycles          int
}

// Run builds an engine from cfg, advances it the given number of cycles
// and returns the recorded series.
func Run(cfg Config, cycles int) (*Result, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	e.Run(cycles)
	return &Result{
		SDM:             e.SDM(),
		GDM:             e.GDM(),
		UnsuccessfulPct: e.UnsuccessfulPct(),
		Size:            e.Size(),
		Messages:        e.Delivered,
		FinalN:          e.N(),
		Cycles:          e.Cycle(),
	}, nil
}
