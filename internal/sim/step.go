package sim

import (
	"github.com/gossipkit/slicing/internal/core"
	"github.com/gossipkit/slicing/internal/metrics"
	"github.com/gossipkit/slicing/internal/ordering"
	"github.com/gossipkit/slicing/internal/proto"
)

// Step runs one simulation cycle: churn, membership exchanges, slicing
// exchanges (with the configured concurrency model), then measurement.
func (e *Engine) Step() {
	refreshed := e.applyChurn()
	if e.cfg.Membership == UniformOracle && !refreshed {
		// Oracle draws serve from the self-entry cache; skip the refresh
		// when a joining churn event already ran one this cycle.
		e.refreshSelfEntries()
	}
	perm := e.permutedSlots()
	e.membershipPhase(perm)
	e.protocolPhase(perm)
	e.cycle++
	e.record()
}

// Run advances the simulation by the given number of cycles.
func (e *Engine) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		e.Step()
	}
}

// permutedSlots returns the live arena slots in a fresh random order.
// The iteration base is arena order, which is deterministic under a
// fixed seed (it changes only through deterministic swap-deletes), so
// equal seeds yield equal runs. The shuffle replicates rand.Perm's draw
// sequence in-place over a reusable buffer.
func (e *Engine) permutedSlots() []int32 {
	perm := e.permBuf[:0]
	for i := range e.nodes {
		j := e.rng.Intn(i + 1)
		perm = append(perm, int32(i))
		if j != i {
			perm[i] = perm[j]
			perm[j] = int32(i)
		}
	}
	e.permBuf = perm
	return perm
}

// applyChurn executes the cycle's churn event (§3.3): leavers vanish
// without notice, joiners arrive with fresh state and a bootstrap view.
// The whole event costs one merge pass over the membership — leavers are
// swap-deleted from the arena in O(1) each, and both PickLeavers and
// every JoinAttr draw read the same pre-event attribute-ordered
// membership, so no event ever re-sorts the population. It reports
// whether it refreshed the self-entry cache, so Step can avoid a
// duplicate refresh pass for oracle runs.
func (e *Engine) applyChurn() (refreshed bool) {
	if e.cfg.Schedule == nil || e.cfg.Pattern == nil {
		return false
	}
	ev := e.cfg.Schedule.At(e.cycle, len(e.nodes))
	if ev.Leave == 0 && ev.Join == 0 {
		return false
	}
	members := e.members // pre-event membership, attribute order
	if ev.Leave > 0 {
		for _, id := range e.cfg.Pattern.PickLeavers(e.rng, members, ev.Leave) {
			e.removeNode(id)
		}
	}
	joiners := e.joinersBuf[:0]
	for i := 0; i < ev.Join; i++ {
		attr := e.cfg.Pattern.JoinAttr(e.rng, members)
		if err := e.addNode(attr); err != nil {
			// addNode only fails on invalid static configuration, which
			// New has already validated.
			panic(err)
		}
		joiners = append(joiners, core.Member{ID: e.nextID, Attr: attr})
	}
	e.joinersBuf = joiners
	e.mergeMembers(joiners)
	if ev.Join > 0 {
		// Bootstrap views sample the cached self entries; re-cache so
		// joiners see current coordinates, not cycle-of-creation ones.
		e.refreshSelfEntries()
		e.bootstrapViews(len(e.nodes) - ev.Join)
		return true
	}
	return false
}

// mergeMembers rebuilds the attribute-ordered membership after a churn
// event in one pass: departed members are dropped (their slot is gone)
// and the event's joiners — sorted among themselves, at most a handful —
// are merged in. O(n + j·log j) per event, against the O(n·log n) sort
// per joiner the map-based engine paid.
func (e *Engine) mergeMembers(joiners []core.Member) {
	core.SortMembers(joiners)
	out := e.membersBuf[:0]
	j := 0
	for _, m := range e.members {
		if e.slots[m.ID] == noSlot {
			continue // departed this event
		}
		for j < len(joiners) && core.Less(joiners[j], m) {
			out = append(out, joiners[j])
			j++
		}
		out = append(out, m)
	}
	out = append(out, joiners[j:]...)
	e.members, e.membersBuf = out, e.members
}

// removeNode swap-deletes a node from the arena: the last node moves
// into the vacated slot and the departed ID's slot entry is tombstoned.
// O(1) per removal; the attribute-ordered membership is compacted later
// by mergeMembers.
func (e *Engine) removeNode(id core.ID) {
	s, ok := e.slotOf(id)
	if !ok {
		return
	}
	last := int32(len(e.nodes) - 1)
	if s != last {
		e.nodes[s] = e.nodes[last]
		e.slots[e.nodes[s].id] = s
	}
	e.nodes[last] = simNode{} // release protocol state to the GC
	e.nodes = e.nodes[:last]
	e.slots[id] = noSlot
}

// membershipPhase completes one view exchange per node, synchronously
// ("each node updates its view before sending its random value or its
// attribute value", §4.5.2). Requests to departed nodes time out,
// dropping the stale entry.
func (e *Engine) membershipPhase(perm []int32) {
	for _, s := range perm {
		sn := &e.nodes[s]
		for _, env := range sn.mem.Tick(e.rng) {
			req, ok := env.Msg.(proto.ViewRequest)
			if !ok {
				continue
			}
			target := e.lookup(env.To)
			if target == nil {
				e.Delivered.Dropped++
				sn.mem.OnTimeout(env.To)
				continue
			}
			e.Delivered.ViewRequests++
			for _, rep := range target.mem.HandleRequest(sn.id, req, e.rng) {
				repMsg, ok := rep.Msg.(proto.ViewReply)
				if !ok {
					continue
				}
				e.Delivered.ViewReplies++
				sn.mem.HandleReply(env.To, repMsg)
			}
		}
	}
}

// deferredEnv is an overlapping message held back until the end of the
// cycle (§4.5.2). The sender is recorded by arena slot: churn never runs
// mid-cycle, so slots are stable for the lifetime of the deferral.
type deferredEnv struct {
	from int32
	env  proto.Envelope
}

// protocolPhase runs the slicing step of every node. Ordering exchanges
// honor the concurrency model; ranking updates are one-way and always
// valid, so they deliver immediately (§5: "concurrency has no impact on
// convergence speed").
func (e *Engine) protocolPhase(perm []int32) {
	live := (*liveReader)(e)
	var snapshot proto.StateReader
	if e.cfg.Protocol == Ordering && e.cfg.Concurrency > 0 {
		e.captureSnapshot()
		snapshot = (*snapReader)(e)
	}
	overlapping := e.deferredBuf[:0]
	for _, s := range perm {
		sn := &e.nodes[s]
		overlap := snapshot != nil && e.rng.Float64() < e.cfg.Concurrency
		reader := proto.StateReader(live)
		if overlap {
			reader = snapshot
		}
		envs := sn.node.Tick(reader, e.rng)
		for _, env := range envs {
			if overlap {
				overlapping = append(overlapping, deferredEnv{from: s, env: env})
				continue
			}
			e.deliver(sn.id, env)
		}
	}
	e.deferredBuf = overlapping[:0]
	// Overlapping messages land in random order at the end of the cycle;
	// by then their payload and partner choice may be stale.
	e.rng.Shuffle(len(overlapping), func(i, j int) {
		overlapping[i], overlapping[j] = overlapping[j], overlapping[i]
	})
	for _, d := range overlapping {
		sn := &e.nodes[d.from]
		env := d.env
		if req, ok := env.Msg.(proto.SwapRequest); ok && !e.cfg.StalePayloads {
			// The exchange executes on live values; only the partner
			// selection was stale. This keeps the swap two-sided and the
			// random-value multiset conserved, matching the paper's
			// Fig. 4(d).
			req.R = sn.node.Estimate()
			env.Msg = req
		}
		e.deliver(sn.id, env)
	}
}

// deliver routes one protocol envelope to its destination, delivering
// any replies back to the sender (the REQ/ACK round of Fig. 2, or the
// one-way UPD of Fig. 5).
func (e *Engine) deliver(from core.ID, env proto.Envelope) {
	target := e.lookup(env.To)
	if target == nil {
		e.Delivered.Dropped++
		return
	}
	e.countMessage(env.Msg)
	for _, rep := range target.node.Handle(from, env.Msg, e.rng) {
		sender := e.lookup(rep.To)
		if sender == nil {
			e.Delivered.Dropped++
			continue
		}
		e.countMessage(rep.Msg)
		sender.node.Handle(env.To, rep.Msg, e.rng)
	}
}

func (e *Engine) countMessage(msg proto.Message) {
	switch msg.(type) {
	case proto.SwapRequest:
		e.Delivered.SwapRequests++
	case proto.SwapReply:
		e.Delivered.SwapReplies++
	case proto.RankUpdate:
		e.Delivered.RankUpdates++
	case proto.ViewRequest:
		e.Delivered.ViewRequests++
	case proto.ViewReply:
		e.Delivered.ViewReplies++
	}
}

// liveReader resolves coordinates from the nodes' current state — the
// cycle model's "views are up to date" assumption — through the arena:
// a slot load and an interface call, no hashing, no allocation (the
// reader is the engine itself behind a defined pointer type).
type liveReader Engine

// R implements proto.StateReader.
func (lr *liveReader) R(id core.ID) (float64, bool) {
	e := (*Engine)(lr)
	sn := e.lookup(id)
	if sn == nil {
		return 0, false
	}
	return sn.node.Estimate(), true
}

// snapReader serves the cycle-start snapshot captured by
// captureSnapshot, resolving IDs to slots without hashing.
type snapReader Engine

// R implements proto.StateReader.
func (sr *snapReader) R(id core.ID) (float64, bool) {
	e := (*Engine)(sr)
	s, ok := e.slotOf(id)
	if !ok {
		return 0, false
	}
	return e.snapBuf[s], true
}

// captureSnapshot records every node's coordinate at the start of the
// cycle into the per-slot snapshot buffer (reused across cycles).
func (e *Engine) captureSnapshot() {
	if cap(e.snapBuf) < len(e.nodes) {
		e.snapBuf = make([]float64, len(e.nodes))
	}
	e.snapBuf = e.snapBuf[:len(e.nodes)]
	for i := range e.nodes {
		e.snapBuf[i] = e.nodes[i].node.Estimate()
	}
}

// record appends the cycle's measurements to the result series. SDM
// reads the incrementally maintained attribute order, so the per-cycle
// measurement is O(n) — no sort.
func (e *Engine) record() {
	believed := e.believedBuf[:0]
	for _, m := range e.members {
		believed = append(believed, e.nodes[e.slots[m.ID]].node.SliceIndex())
	}
	e.believedBuf = believed
	e.sdm.Add(e.cycle, metrics.SDMSorted(believed, e.part))
	e.size.Add(e.cycle, float64(len(e.nodes)))
	if e.cfg.RecordGDM {
		e.gdm.Add(e.cycle, e.meter.GDM(e.liveStates()))
	}
	if e.cfg.Protocol == Ordering {
		var received, failed uint64
		for i := range e.nodes {
			if on, ok := e.nodes[i].orderingNode(); ok {
				st := on.Stats()
				received += st.ReqReceived
				failed += st.SwapFailedAtReceiver
			}
		}
		dr, df := received-min64(received, e.prevReqReceived), failed-min64(failed, e.prevFailed)
		pct := 0.0
		if dr > 0 {
			pct = 100 * float64(df) / float64(dr)
		}
		e.unsucc.Add(e.cycle, pct)
		e.prevReqReceived, e.prevFailed = received, failed
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// States snapshots every live node for measurement, in arena order. The
// caller owns the returned slice.
func (e *Engine) States() []metrics.NodeState {
	states := make([]metrics.NodeState, 0, len(e.nodes))
	return e.appendStates(states)
}

// liveStates is States over a reusable engine buffer, for the per-cycle
// measurements; the result is valid until the next call.
func (e *Engine) liveStates() []metrics.NodeState {
	e.statesBuf = e.appendStates(e.statesBuf[:0])
	return e.statesBuf
}

func (e *Engine) appendStates(states []metrics.NodeState) []metrics.NodeState {
	for i := range e.nodes {
		sn := &e.nodes[i]
		states = append(states, metrics.NodeState{
			Member:     sn.node.Member(),
			R:          sn.node.Estimate(),
			SliceIndex: sn.node.SliceIndex(),
		})
	}
	return states
}

// Cycle returns the number of completed cycles.
func (e *Engine) Cycle() int { return e.cycle }

// N returns the current live system size.
func (e *Engine) N() int { return len(e.nodes) }

// Partition returns the slice partition in force.
func (e *Engine) Partition() core.Partition { return e.part }

// SDM returns the slice disorder series (one point per completed cycle,
// plus the initial state at cycle 0).
func (e *Engine) SDM() metrics.Series { return e.sdm }

// GDM returns the global disorder series (empty unless RecordGDM).
func (e *Engine) GDM() metrics.Series { return e.gdm }

// UnsuccessfulPct returns the per-cycle percentage of swap requests
// whose predicate had expired on arrival (Fig. 4(c)).
func (e *Engine) UnsuccessfulPct() metrics.Series { return e.unsucc }

// Size returns the live-population series.
func (e *Engine) Size() metrics.Series { return e.size }

// OrderingStats sums the event counters over all live ordering nodes.
func (e *Engine) OrderingStats() ordering.Stats {
	var total ordering.Stats
	for i := range e.nodes {
		if on, ok := e.nodes[i].orderingNode(); ok {
			st := on.Stats()
			total.ReqSent += st.ReqSent
			total.ReqReceived += st.ReqReceived
			total.SwapFailedAtReceiver += st.SwapFailedAtReceiver
			total.SwapFailedAtInitiator += st.SwapFailedAtInitiator
			total.Swapped += st.Swapped
		}
	}
	return total
}

// Result bundles the series of a completed run.
type Result struct {
	SDM             metrics.Series
	GDM             metrics.Series
	UnsuccessfulPct metrics.Series
	Size            metrics.Series
	Messages        MessageCounts
	FinalN          int
	Cycles          int
}

// Run builds an engine from cfg, advances it the given number of cycles
// and returns the recorded series.
func Run(cfg Config, cycles int) (*Result, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	e.Run(cycles)
	return &Result{
		SDM:             e.SDM(),
		GDM:             e.GDM(),
		UnsuccessfulPct: e.UnsuccessfulPct(),
		Size:            e.Size(),
		Messages:        e.Delivered,
		FinalN:          e.N(),
		Cycles:          e.Cycle(),
	}, nil
}
