package sim

import (
	"math"
	"math/bits"
	"testing"
)

// Streams must be pure functions of (seed, id, cycle, phase): the same
// derivation replays identically, and changing any input decorrelates
// the draws.
func TestStreamDeterministicAndDistinct(t *testing.T) {
	a := nodeStream(7, 42, 3, phaseMembership)
	b := nodeStream(7, 42, 3, phaseMembership)
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("identical derivations diverge at draw %d: %x vs %x", i, x, y)
		}
	}
	base := nodeStream(7, 42, 3, phaseMembership)
	variants := map[string]Stream{
		"seed":  nodeStream(8, 42, 3, phaseMembership),
		"id":    nodeStream(7, 43, 3, phaseMembership),
		"cycle": nodeStream(7, 42, 4, phaseMembership),
		"phase": nodeStream(7, 42, 3, phaseProtocol),
	}
	b0 := base.Uint64()
	for name, v := range variants {
		if v.Uint64() == b0 {
			t.Errorf("changing %s did not change the first draw", name)
		}
	}
}

func TestStreamIntnBoundsAndPanic(t *testing.T) {
	s := nodeStream(1, 1, 1, phaseProtocol)
	for _, n := range []int{1, 2, 3, 7, 1000, 1 << 40} {
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

// Uniformity smoke: mean of Float64 near 1/2, mean of Intn(k) near
// (k-1)/2, and single-bit frequencies near 1/2 — catching gross mixing
// mistakes in the stream derivation, not certifying the generator.
func TestStreamUniformitySmoke(t *testing.T) {
	const draws = 200_000
	s := nodeStream(123, 9, 0, phaseProtocol)
	sumF := 0.0
	for i := 0; i < draws; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sumF += f
	}
	if mean := sumF / draws; math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want ≈ 0.5", mean)
	}
	const k = 10
	sumI := 0
	for i := 0; i < draws; i++ {
		sumI += s.Intn(k)
	}
	if mean := float64(sumI) / draws; math.Abs(mean-float64(k-1)/2) > 0.05 {
		t.Errorf("Intn(%d) mean = %v, want ≈ %v", k, mean, float64(k-1)/2)
	}
	var ones [64]int
	for i := 0; i < draws; i++ {
		v := s.Uint64()
		for b := 0; b < 64; b++ {
			ones[b] += int(v >> b & 1)
		}
	}
	for b, c := range ones {
		if f := float64(c) / draws; math.Abs(f-0.5) > 0.01 {
			t.Errorf("bit %d frequency = %v, want ≈ 0.5", b, f)
		}
	}
}

// Adjacent node IDs and cycles must yield decorrelated streams: the
// fraction of equal bits between neighboring streams' draws stays near
// 1/2 (a weak but effective counter-mix regression check).
func TestStreamNeighborDecorrelation(t *testing.T) {
	const draws = 10_000
	check := func(name string, a, b Stream) {
		t.Helper()
		equal := 0
		for i := 0; i < draws; i++ {
			x := a.Uint64() ^ b.Uint64()
			equal += 64 - bits.OnesCount64(x)
		}
		f := float64(equal) / float64(64*draws)
		if math.Abs(f-0.5) > 0.01 {
			t.Errorf("%s: equal-bit fraction %v, want ≈ 0.5", name, f)
		}
	}
	check("adjacent ids", nodeStream(1, 100, 5, phaseProtocol), nodeStream(1, 101, 5, phaseProtocol))
	check("adjacent cycles", nodeStream(1, 100, 5, phaseProtocol), nodeStream(1, 100, 6, phaseProtocol))
	check("adjacent seeds", nodeStream(1, 100, 5, phaseProtocol), nodeStream(2, 100, 5, phaseProtocol))
}
