package sim

import (
	"testing"

	"github.com/gossipkit/slicing/internal/dist"
	"github.com/gossipkit/slicing/internal/telemetry"
)

// TestTelemetryDoesNotPerturbRun pins the determinism contract: an
// instrumented engine produces bit-identical series to an
// uninstrumented one, and the gauges land on the final cycle's values.
func TestTelemetryDoesNotPerturbRun(t *testing.T) {
	cfg := Config{
		N: 300, Slices: 4, ViewSize: 12,
		Protocol: Ordering, RecordGDM: true,
		AttrDist: dist.Uniform{Lo: 0, Hi: 1}, Seed: 7,
	}
	plain, err := Run(cfg, 25)
	if err != nil {
		t.Fatalf("Run (plain): %v", err)
	}

	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New (instrumented): %v", err)
	}
	e.Run(25)

	instSDM, plainSDM := e.SDM().Points, plain.SDM.Points
	if len(instSDM) != len(plainSDM) {
		t.Fatalf("series length %d vs %d", len(instSDM), len(plainSDM))
	}
	for i := range instSDM {
		if instSDM[i] != plainSDM[i] {
			t.Fatalf("cycle %d: instrumented SDM %v != plain %v", i, instSDM[i], plainSDM[i])
		}
	}
	if e.Delivered != plain.Messages {
		t.Errorf("message counts diverge: %+v vs %+v", e.Delivered, plain.Messages)
	}

	if got := e.tel.cycle.Value(); got != 25 {
		t.Errorf("cycle gauge = %v, want 25", got)
	}
	if got := e.tel.nodes.Value(); got != float64(e.N()) {
		t.Errorf("nodes gauge = %v, want %d", got, e.N())
	}
	last := instSDM[len(instSDM)-1].Value
	if got := e.tel.sdm.Value(); got != last {
		t.Errorf("sdm gauge = %v, want final SDM %v", got, last)
	}
	for ix, h := range e.tel.phases {
		if h.Count() != 25 {
			t.Errorf("phase %d histogram count = %d, want 25", ix, h.Count())
		}
	}
}
