package sim

import (
	"testing"

	"github.com/gossipkit/slicing/internal/churn"
	"github.com/gossipkit/slicing/internal/dist"
	"github.com/gossipkit/slicing/internal/ordering"
)

// TestMillionNodeSmoke stands the struct-of-arrays engine up at its
// acceptance scale — N=1,000,000 live nodes with churn — and runs a few
// cycles: enough to prove construction, the parallel rounds, swap-delete
// churn and the measurement pass all hold together on a ~1.9 GB arena,
// without paying for a full convergence run in the test suite. Skipped
// under -short and under the race detector (the shadow memory alone
// would multiply the footprint several-fold).
func TestMillionNodeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node smoke is not a -short test")
	}
	if raceEnabled {
		t.Skip("million-node smoke under -race would need several GB of shadow memory")
	}
	cfg := Config{
		N: 1_000_000, Slices: 100, ViewSize: 20,
		Protocol: Ordering, Policy: ordering.SelectMaxGain,
		AttrDist: dist.Uniform{Lo: 0, Hi: 1000}, Seed: 9,
		Schedule: churn.Flat{JoinRate: 0.001, LeaveRate: 0.001},
		Pattern:  churn.Uniform{Dist: dist.Uniform{Lo: 0, Hi: 1000}},
		Workers:  4,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(3)
	start, _ := e.SDM().At(0)
	end, _ := e.SDM().Last()
	if end.Value >= start {
		t.Errorf("disorder did not fall over 3 cycles: SDM %v → %v", start, end.Value)
	}
	mem := e.MemReport()
	if mem.Nodes < 990_000 || mem.Nodes > 1_010_000 {
		t.Errorf("population drifted implausibly under 0.1%% churn: %d nodes", mem.Nodes)
	}
	// The budget the README advertises: the engine must stay around
	// ~1.9 kB per node, and well under 2.5 kB — a per-node map, pointer
	// field or stray per-node buffer would blow straight through this.
	if bpn := mem.BytesPerNode; bpn <= 0 || bpn > 2500 {
		t.Errorf("engine bytes/node = %.0f, want (0, 2500]", bpn)
	}
	checkArenaConsistency(t, e)
}
