package sim

import (
	"github.com/gossipkit/slicing/internal/core"
	"github.com/gossipkit/slicing/internal/fault"
	"github.com/gossipkit/slicing/internal/metrics"
)

// This file is the simulator half of the fault plane (Config.Faults).
// Injection preserves the worker-count bit-invariance contract the same
// way the protocol rounds do:
//
//   - Cohort membership, partition grouping and lie targets are pure
//     functions of (salt, node ID) — no state, no draw order.
//   - Per-node randomness (drift walk steps, chaos loss on view
//     exchanges) comes from the node's own counter stream (phaseFault,
//     or a trailing draw on its membership stream), so parallel workers
//     can evaluate any subset of nodes in any order.
//   - Everything else — lie installation, chaos draws on protocol
//     envelopes — runs in the serial sections of a cycle on the
//     engine's stream, exactly like churn.

// FaultCounts tallies the injections a run performed, cumulatively.
type FaultCounts struct {
	// DriftPerturbations counts individual attribute updates applied by
	// the drift schedule.
	DriftPerturbations uint64
	// LiesInstalled counts honest→lying transitions (a node beginning to
	// impersonate a false attribute).
	LiesInstalled uint64
	// PartitionDrops counts messages and view exchanges suppressed
	// because they crossed an open partition.
	PartitionDrops uint64
	// ChaosDrops / ChaosDups / ChaosDelays count messages lost,
	// duplicated and deferred by chaos windows.
	ChaosDrops  uint64
	ChaosDups   uint64
	ChaosDelays uint64
}

// FaultTally returns the cumulative injection counters.
func (e *Engine) FaultTally() FaultCounts { return e.fc }

// Pollution returns the per-cycle slice-pollution series: the fraction
// of the byzantine target slice's believed occupants that are liars.
// Empty unless the plan has a Byzantine family.
func (e *Engine) Pollution() metrics.Series { return e.pollution }

// applyFaults runs the cycle's serial fault step, after churn and
// before the membership phase: caches the cycle's partition/chaos
// windows, applies the drift schedule to the real attributes, and
// installs, refreshes or lifts byzantine lies. It reports whether any
// node attribute changed (so Step can invalidate the self-entry cache).
func (e *Engine) applyFaults() (changed bool) {
	p := e.cfg.Faults
	if p.Empty() {
		return false
	}
	e.partNow = p.PartitionAt(e.cycle)
	e.chaosNow = p.ChaosAt(e.cycle)
	if e.applyDrift(p.Drift) {
		changed = true
	}
	if e.applyByzantine(p.Byzantine) {
		changed = true
	}
	return changed
}

// applyDrift perturbs the attributes of the drift cohort. The REAL
// attribute always moves — e.members stays ground truth — while the
// node only adopts the new value when it is not currently lying (a
// liar's drift surfaces when its lie is lifted).
func (e *Engine) applyDrift(d *fault.Drift) bool {
	if !d.Applies(e.cycle) {
		return false
	}
	seed, cycle := e.cfg.Seed, uint64(e.cycle)
	moved := false
	for i := range e.members {
		m := &e.members[i]
		id := uint64(m.ID)
		if !fault.Select(e.saltDrift, id, d.Frac) {
			continue
		}
		st := nodeStream(seed, id, cycle, phaseFault)
		delta := d.Delta(e.cycle, st.Float64())
		if delta == 0 {
			continue
		}
		m.Attr += core.Attr(delta)
		if _, lies := e.lying[m.ID]; !lies {
			e.setAttrAt(e.slots[m.ID], m.Attr)
		}
		e.fc.DriftPerturbations++
		moved = true
	}
	if moved {
		core.SortMembers(e.members)
	}
	return moved
}

// applyByzantine reconciles every cohort node's lying state with the
// window: installs lies when it opens (and on liars that join mid-
// window), refreshes lies that drifted out of position, restores real
// attributes when it closes. Idempotent per cycle.
func (e *Engine) applyByzantine(b *fault.Byzantine) bool {
	if b == nil {
		return false
	}
	active := b.Window.Contains(e.cycle)
	if !active && len(e.lying) == 0 {
		return false
	}
	changed := false
	for i := range e.members {
		m := e.members[i]
		_, cur := e.lying[m.ID]
		want := active && fault.Select(e.saltByz, uint64(m.ID), b.Frac)
		switch {
		case want:
			lie := e.lieAttr(b, m.ID)
			s := e.slots[m.ID]
			if !cur {
				if e.lying == nil {
					e.lying = make(map[core.ID]struct{})
				}
				e.lying[m.ID] = struct{}{}
				e.fc.LiesInstalled++
			}
			if e.memberAt(s).Attr != lie {
				e.setAttrAt(s, lie)
				changed = true
			}
		case cur:
			// Window closed (or the node was never in the cohort — map
			// entries only exist for cohort nodes): drop the lie.
			e.setAttrAt(e.slots[m.ID], m.Attr)
			delete(e.lying, m.ID)
			changed = true
		}
	}
	return changed
}

// lieAttr computes the attribute a liar claims, as a pure function of
// (salt, id) against the current attribute-ordered membership:
//
//   - always-top: above the population maximum, jittered per liar so
//     lies stay distinct.
//   - random: uniform within the population's attribute range.
//   - collusive: interpolated into the target slice's attribute
//     quantile range — the cohort converges onto one slice.
func (e *Engine) lieAttr(b *fault.Byzantine, id core.ID) core.Attr {
	n := len(e.members)
	lo, hi := e.members[0].Attr, e.members[n-1].Attr
	switch b.Policy {
	case fault.LieRandom:
		return lo + (hi-lo)*core.Attr(fault.Unit(e.saltByz, uint64(id), 2))
	case fault.LieCollusive:
		sl := e.part.Slice(b.Target(e.part.Len()))
		rank := sl.Low + (sl.High-sl.Low)*fault.Unit(e.saltByz, uint64(id), 3)
		pos := int(rank * float64(n))
		if pos >= n {
			pos = n - 1
		}
		return e.members[pos].Attr
	default: // LieAlwaysTop
		return hi + 1 + core.Attr(fault.Unit(e.saltByz, uint64(id), 1))
	}
}

// isLiar reports whether id belongs to the byzantine cohort (a static
// property of the run: cohort nodes count as liars before, during and
// after the lie window, so residual pollution decay is measurable).
func (e *Engine) isLiar(id core.ID) bool {
	b := e.cfg.Faults.ByzantineOf()
	return b != nil && fault.Select(e.saltByz, uint64(id), b.Frac)
}

// partitionBlocks reports whether a message from a to b crosses an open
// partition this cycle. Pure against per-cycle state (partNow, the
// salt), so parallel compute phases may call it freely.
func (e *Engine) partitionBlocks(a, b core.ID) bool {
	return e.partNow != nil && e.partNow.Crosses(e.saltPart, uint64(a), uint64(b))
}

// recordPollution appends the cycle's slice-pollution sample: among the
// nodes that believe they are in the byzantine target slice, the
// fraction belonging to the liar cohort. believed is in e.members
// order.
func (e *Engine) recordPollution(believed []int) {
	b := e.cfg.Faults.ByzantineOf()
	if b == nil {
		return
	}
	target := b.Target(e.part.Len())
	claimed, lying := 0, 0
	for i := range e.members {
		if believed[i] != target {
			continue
		}
		claimed++
		if fault.Select(e.saltByz, uint64(e.members[i].ID), b.Frac) {
			lying++
		}
	}
	p := 0.0
	if claimed > 0 {
		p = float64(lying) / float64(claimed)
	}
	e.pollution.Add(e.cycle, p)
	if e.tel != nil {
		e.tel.pollution.Set(p)
	}
}

// publishFaultTelemetry adds the injection deltas since the previous
// cycle to the labeled fault counters.
func (e *Engine) publishFaultTelemetry() {
	if e.tel == nil {
		return
	}
	cur, prev := e.fc, e.prevFC
	e.tel.faults[faultIxDrift].Add(cur.DriftPerturbations - prev.DriftPerturbations)
	e.tel.faults[faultIxLie].Add(cur.LiesInstalled - prev.LiesInstalled)
	e.tel.faults[faultIxPartDrop].Add(cur.PartitionDrops - prev.PartitionDrops)
	e.tel.faults[faultIxChaosDrop].Add(cur.ChaosDrops - prev.ChaosDrops)
	e.tel.faults[faultIxChaosDup].Add(cur.ChaosDups - prev.ChaosDups)
	e.tel.faults[faultIxChaosDelay].Add(cur.ChaosDelays - prev.ChaosDelays)
	e.prevFC = cur
}
