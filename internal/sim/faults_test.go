package sim

import (
	"testing"

	"github.com/gossipkit/slicing/internal/dist"
	"github.com/gossipkit/slicing/internal/fault"
)

func faultBaseConfig(seed int64) Config {
	return Config{
		N: 300, Slices: 10, ViewSize: 12, Protocol: Ranking,
		Estimator: WindowEstimator, WindowSize: 500,
		AttrDist: dist.Uniform{Lo: 0, Hi: 1000}, Seed: seed,
	}
}

// TestDriftPerturbsAndTracks pins the drift family end to end: a step
// drift mid-run actually moves attributes (the injection counter and
// the ground-truth membership agree), disorder spikes when it lands,
// and the sliding-window estimator re-converges afterwards.
func TestDriftPerturbsAndTracks(t *testing.T) {
	cfg := faultBaseConfig(21)
	cfg.Faults = &fault.Plan{Drift: &fault.Drift{
		Kind: fault.DriftStep, Window: fault.Window{From: 40, To: 80},
		Frac: 0.3, Amp: 2000, // far outside the attr range: drifters jump to the top
	}}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(120)
	if got := e.FaultTally().DriftPerturbations; got == 0 {
		t.Fatal("step drift injected nothing")
	}
	atStep, _ := e.SDM().At(41)
	final, _ := e.SDM().Last()
	before, _ := e.SDM().At(39)
	if atStep <= before {
		t.Errorf("SDM did not spike at the drift step: before=%.4f at=%.4f", before, atStep)
	}
	if final.Value >= atStep/2 {
		t.Errorf("no re-convergence after drift: spike=%.4f final=%.4f", atStep, final.Value)
	}
}

// TestByzantinePollutionRisesAndDecays pins the byzantine family: while
// the lie window is open, the top slice's believed occupants include
// liars (pollution > 0); after the window closes the pollution decays.
func TestByzantinePollutionRisesAndDecays(t *testing.T) {
	cfg := faultBaseConfig(22)
	cfg.Faults = &fault.Plan{Byzantine: &fault.Byzantine{
		Policy: fault.LieAlwaysTop, Window: fault.Window{From: 30, To: 90},
		Frac: 0.1, TargetSlice: -1,
	}}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(160)
	if e.FaultTally().LiesInstalled == 0 {
		t.Fatal("no lies installed")
	}
	during, ok := e.Pollution().At(85)
	if !ok {
		t.Fatal("no pollution sample at cycle 85")
	}
	if during <= 0 {
		t.Errorf("pollution = %v at end of lie window, want > 0", during)
	}
	final, _ := e.Pollution().Last()
	if final.Value >= during {
		t.Errorf("pollution did not decay after heal: during=%.3f final=%.3f", during, final.Value)
	}
}

// TestPartitionDropsAndHeals pins the partition family: cross-group
// traffic is suppressed only while the window is open, and disorder
// recovers after the heal.
func TestPartitionDropsAndHeals(t *testing.T) {
	cfg := faultBaseConfig(23)
	cfg.Faults = &fault.Plan{Partition: &fault.Partition{
		Window: fault.Window{From: 20, To: 60}, Groups: 2,
	}}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(20)
	if d := e.FaultTally().PartitionDrops; d != 0 {
		t.Fatalf("partition dropped %d messages before its window opened", d)
	}
	e.Run(40)
	open := e.FaultTally().PartitionDrops
	if open == 0 {
		t.Fatal("open partition dropped nothing")
	}
	e.Run(60)
	if after := e.FaultTally().PartitionDrops; after != open {
		t.Errorf("partition kept dropping after heal: %d → %d", open, after)
	}
	atHeal, _ := e.SDM().At(60)
	final, _ := e.SDM().Last()
	if final.Value > atHeal {
		t.Errorf("no re-merge after heal: SDM %.4f at heal, %.4f at end", atHeal, final.Value)
	}
}

// TestChaosInjectsAllModes pins the message-chaos family: loss, dup and
// delay all fire inside the window, and the loss shows up in the
// dropped counter.
func TestChaosInjectsAllModes(t *testing.T) {
	cfg := faultBaseConfig(24)
	cfg.Faults = &fault.Plan{Chaos: []fault.Chaos{{
		Window: fault.Window{From: 10, To: 50},
		Loss:   0.2, Dup: 0.1, Delay: 0.15,
	}}}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(60)
	fc := e.FaultTally()
	if fc.ChaosDrops == 0 || fc.ChaosDups == 0 || fc.ChaosDelays == 0 {
		t.Errorf("chaos injections incomplete: %+v", fc)
	}
	if e.Delivered.Dropped < fc.ChaosDrops {
		t.Errorf("chaos drops (%d) not reflected in Delivered.Dropped (%d)",
			fc.ChaosDrops, e.Delivered.Dropped)
	}
}

// TestFaultsSeedDeterministic pins that a faulted run is a pure
// function of its seed: same seed → identical series and injection
// tallies, different seed → different injections.
func TestFaultsSeedDeterministic(t *testing.T) {
	build := func(seed int64) Config {
		cfg := faultBaseConfig(seed)
		cfg.Faults = allFaultsPlan()
		return cfg
	}
	run := func(cfg Config) (runFingerprint, FaultCounts) {
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Run(40)
		return fingerprint(e), e.FaultTally()
	}
	fpA, fcA := run(build(31))
	fpB, fcB := run(build(31))
	if fpA != fpB || fcA != fcB {
		t.Fatalf("same-seed faulted runs diverged:\n %+v\n %+v", fcA, fcB)
	}
	_, fcC := run(build(32))
	if fcC == fcA {
		t.Error("different seed produced identical fault tallies — injection is not seed-sensitive")
	}
}
