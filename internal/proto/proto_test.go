package proto

import (
	"testing"

	"github.com/gossipkit/slicing/internal/core"
	"github.com/gossipkit/slicing/internal/view"
)

func TestMapReader(t *testing.T) {
	r := MapReader{1: 0.5}
	if v, ok := r.R(1); !ok || v != 0.5 {
		t.Errorf("R(1) = %v,%v", v, ok)
	}
	if _, ok := r.R(2); ok {
		t.Error("R(2) should be unknown")
	}
}

func TestFuncReader(t *testing.T) {
	r := FuncReader(func(id core.ID) (float64, bool) { return float64(id) / 10, id < 5 })
	if v, ok := r.R(3); !ok || v != 0.3 {
		t.Errorf("R(3) = %v,%v", v, ok)
	}
	if _, ok := r.R(7); ok {
		t.Error("R(7) should be unknown")
	}
}

func TestViewBackedReader(t *testing.T) {
	v := view.MustNew(4)
	v.Add(view.Entry{ID: 2, R: 0.7})
	selfR := 0.25
	r := ViewBacked(1, func() float64 { return selfR }, v)
	// Self resolves through the live callback.
	if got, ok := r.R(1); !ok || got != 0.25 {
		t.Errorf("R(self) = %v,%v", got, ok)
	}
	selfR = 0.5
	if got, _ := r.R(1); got != 0.5 {
		t.Errorf("R(self) not live: %v", got)
	}
	// Neighbors resolve through the view.
	if got, ok := r.R(2); !ok || got != 0.7 {
		t.Errorf("R(2) = %v,%v", got, ok)
	}
	// Unknown nodes are unknown.
	if _, ok := r.R(99); ok {
		t.Error("R(99) should be unknown")
	}
}

// Every wire message implements the closed Message interface.
func TestMessageMarkers(t *testing.T) {
	msgs := []Message{
		ViewRequest{}, ViewReply{}, SwapRequest{}, SwapReply{}, RankUpdate{},
	}
	if len(msgs) != 5 {
		t.Fatal("expected 5 message types")
	}
}
