// Package proto defines the wire-level contract shared by every gossip
// protocol in the library: the message types exchanged by the membership
// and slicing protocols, the envelope used to address them, and the
// state-machine interfaces the simulator and the live runtime both
// execute.
//
// Protocol implementations are transport-agnostic: an active thread step
// (Tick) and a passive thread step (Handle) return envelopes instead of
// performing I/O. The cycle simulator delivers envelopes synchronously
// inside a cycle (the paper's PeerSim model); the runtime delivers them
// over a Transport with real concurrency.
package proto

import (
	"github.com/gossipkit/slicing/internal/core"
	"github.com/gossipkit/slicing/internal/view"
)

// Envelope is an addressed message.
type Envelope struct {
	To  core.ID
	Msg Message
}

// Message is implemented by every protocol message. The marker method
// keeps the set of wire types closed so the codec can enumerate them.
type Message interface {
	message()
}

// ViewRequest starts a view exchange (REQ′ in Fig. 3): the initiator's
// view minus the target's entry, plus a fresh self entry.
type ViewRequest struct {
	Entries []view.Entry
}

// ViewReply answers a ViewRequest (ACK′ in Fig. 3) with the responder's
// view minus entries describing the initiator.
type ViewReply struct {
	Entries []view.Entry
}

// SwapRequest starts a random-value exchange (REQ in Fig. 2): the
// initiator's random value and attribute value.
type SwapRequest struct {
	R    float64
	Attr core.Attr
}

// SwapReply answers a SwapRequest (ACK in Fig. 2) with the responder's
// random value as it was before applying the swap predicate.
type SwapReply struct {
	R float64
}

// RankUpdate carries an attribute value to feed a ranking node's
// estimator (UPD in Fig. 5). Communication is one-way: updates are not
// acknowledged.
type RankUpdate struct {
	Attr core.Attr
}

func (ViewRequest) message() {}
func (ViewReply) message()   {}
func (SwapRequest) message() {}
func (SwapReply) message()   {}
func (RankUpdate) message()  {}

// StateReader resolves the current normalized-rank coordinate of a node:
// its random value under the ordering protocols, its rank estimate under
// ranking. The simulator injects a live reader (modelling the paper's
// "the view is up-to-date when a message is sent") or a cycle-start
// snapshot (modelling artificial concurrency, §4.5.2); the runtime
// injects a reader backed by the node's own view, which is all a real
// distributed node can observe.
type StateReader interface {
	// R returns the coordinate for id and whether it is known.
	R(id core.ID) (float64, bool)
}

// ViewBacked returns a StateReader that resolves coordinates from a
// node's own view, with the node's own live coordinate supplied
// separately. This is the only reader available to a real distributed
// node.
func ViewBacked(self core.ID, selfR func() float64, v *view.View) StateReader {
	return viewReader{self: self, selfR: selfR, v: v}
}

type viewReader struct {
	self  core.ID
	selfR func() float64
	v     *view.View
}

func (r viewReader) R(id core.ID) (float64, bool) {
	if id == r.self {
		return r.selfR(), true
	}
	e, ok := r.v.Get(id)
	if !ok {
		return 0, false
	}
	return e.R, true
}

// MapReader is a StateReader backed by a plain map (used for snapshots).
type MapReader map[core.ID]float64

// R implements StateReader.
func (m MapReader) R(id core.ID) (float64, bool) {
	v, ok := m[id]
	return v, ok
}

// FuncReader adapts a function to StateReader (used for live reads).
type FuncReader func(core.ID) (float64, bool)

// R implements StateReader.
func (f FuncReader) R(id core.ID) (float64, bool) { return f(id) }

// CoordTable is the cycle engine's concrete coordinate table: the
// phase-start coordinate snapshot indexed directly by node ID, with NaN
// marking departed or never-assigned IDs. It carries the same answers
// as the engine's snapshot StateReader, but as a flat array: the
// per-neighbor resolve in a protocol tick becomes one load and one
// NaN test instead of an interface dispatch plus an ID→slot→coordinate
// double indirection — half the cache misses of the hottest random
// access a million-node tick performs.
type CoordTable []float64

// Coord returns the coordinate for id and whether id is live. The
// semantics mirror the engine's snapshot StateReader bit for bit:
// unknown and departed IDs are reported unknown, and callers fall back
// to the coordinate recorded in their own view.
func (c CoordTable) Coord(id core.ID) (float64, bool) {
	if id < 1 || int(id) >= len(c) {
		return 0, false
	}
	r := c[id]
	return r, r == r // NaN ⇒ departed or never assigned
}

// Node is a slicing protocol state machine bound to one network node.
// Implementations: ordering.Node (JK / mod-JK) and ranking.Node.
type Node interface {
	// ID returns the node identity.
	ID() core.ID
	// Member returns the identity/attribute pair.
	Member() core.Member
	// Estimate returns the node's current normalized-rank coordinate.
	Estimate() float64
	// SliceIndex returns the slice the node currently believes it
	// belongs to.
	SliceIndex() int
	// SelfEntry returns a fresh view entry describing this node, used by
	// the membership protocol when gossiping.
	SelfEntry() view.Entry
	// Tick runs one active-thread period (after the membership exchange)
	// and returns the messages to send. The StateReader tells the node
	// how fresh its knowledge of its neighbors' coordinates is. The RNG
	// is injected per step: the live runtime passes the node's own
	// serial generator, the cycle engine a per-(node,cycle) counter
	// stream, which is what lets it run every node's step concurrently
	// yet bit-identically at any worker count.
	Tick(state StateReader, rng core.RNG) []Envelope
	// Handle processes one incoming protocol message, returning any
	// replies.
	Handle(from core.ID, msg Message, rng core.RNG) []Envelope
}
