package slicing

// ---------------------------------------------------------------------
// Serving facade: the slice query plane.
//
// internal/serving turns the slice estimates nodes already maintain
// into answers external clients can consume — "which slice is
// attribute X in?", "who is in the top k%?", a boundary-crossing
// stream — each answer carrying a staleness/error bound derived from
// the answering node's convergence state. This section re-exports that
// plane: the backend-agnostic SliceQuerier contract, the three
// queriers (live node, live cluster, simulator), the HTTP/SSE server,
// and the load harness behind `slicebench serve-bench`.
// ---------------------------------------------------------------------

import (
	"context"

	"github.com/gossipkit/slicing/internal/serving"
)

// Query-plane types.
type (
	// SliceQuerier answers slice queries from a local estimate; the
	// backend-agnostic contract implemented by NodeQuerier,
	// ClusterQuerier and SimQuerier.
	SliceQuerier = serving.SliceQuerier
	// SliceAnswer answers "which slice is attribute X in?".
	SliceAnswer = serving.SliceAnswer
	// TopKAnswer answers "who is in the top k%?".
	TopKAnswer = serving.TopKAnswer
	// TopKMember is one locally known top-k% member.
	TopKMember = serving.TopKMember
	// SliceSnapshot is the answering node's own state.
	SliceSnapshot = serving.Snapshot
	// BoundaryEvent is one slice-boundary crossing.
	BoundaryEvent = serving.BoundaryEvent
	// Staleness is the error bound attached to every answer.
	Staleness = serving.Staleness
	// ServingCalibration anchors staleness bounds to measured
	// convergence data (see RankingServingCalibration).
	ServingCalibration = serving.Calibration

	// NodeQuerier answers queries from one live node's local estimate.
	NodeQuerier = serving.NodeQuerier
	// ClusterQuerier answers queries round-robin across a live cluster.
	ClusterQuerier = serving.ClusterQuerier
	// SimQuerier answers queries from a simulation snapshot (testing).
	SimQuerier = serving.SimQuerier

	// QueryServer exposes a SliceQuerier over HTTP/JSON with an SSE
	// boundary stream.
	QueryServer = serving.Server
	// ServeOptions configures a QueryServer.
	ServeOptions = serving.Options
	// QueryLoadOptions configures RunQueryLoad.
	QueryLoadOptions = serving.LoadOptions
	// QueryLoadResult is RunQueryLoad's latency/staleness measurement.
	QueryLoadResult = serving.LoadResult
)

// Default calibrations for the staleness bounds, derived from the
// benchmark catalog's measured convergence floors (BENCH_summary.json
// finalSDM; see the README's Serving section).
var (
	// RankingServingCalibration fits ranking-protocol backends.
	RankingServingCalibration = serving.RankingCalibration
	// OrderingServingCalibration fits ordering-protocol backends.
	OrderingServingCalibration = serving.OrderingCalibration
)

// NewNodeQuerier wraps one live node as a SliceQuerier. A zero
// calibration selects RankingServingCalibration.
func NewNodeQuerier(n *Node, cal ServingCalibration) *NodeQuerier {
	return serving.NewNodeQuerier(n, cal)
}

// NewClusterQuerier wraps a live cluster as a SliceQuerier: every query
// is answered by one node's local estimate, round-robin. A zero
// calibration selects RankingServingCalibration.
func NewClusterQuerier(c *Cluster, cal ServingCalibration) (*ClusterQuerier, error) {
	return serving.NewClusterQuerier(c, cal)
}

// NewSimQuerier snapshots a simulation as a SliceQuerier (the testing
// backend; call Refresh after stepping the engine).
func NewSimQuerier(e *Simulation, cal ServingCalibration) *SimQuerier {
	return serving.NewSimQuerier(e, cal)
}

// NewQueryServer mounts a querier behind HTTP/JSON:
// GET /slice?attr=X, GET /topk?frac=F, GET /snapshot, GET /healthz, and
// GET /watch (an SSE stream of boundary crossings).
func NewQueryServer(q SliceQuerier, opts ServeOptions) *QueryServer {
	return serving.NewServer(q, opts)
}

// RunQueryLoad drives concurrent query load against a serving endpoint
// and reports p50/p99 latency plus the staleness bounds the answers
// carried (the engine behind `slicebench serve-bench`).
func RunQueryLoad(ctx context.Context, baseURL string, opts QueryLoadOptions) (QueryLoadResult, error) {
	return serving.RunLoad(ctx, baseURL, opts)
}
