package slicing

// ---------------------------------------------------------------------
// Simulation facade: the paper's cycle model.
//
// The simulator executes the protocols in discrete synchronized cycles
// over an in-memory population (the PeerSim methodology of §4.5/§5.3),
// which makes runs deterministic and cheap enough to sweep. This
// section exports the engine, its configuration vocabulary (protocols,
// membership substrates, estimators, partner policies), the attribute
// laws populations are drawn from, and the churn models of §5.3.3.
// ---------------------------------------------------------------------

import (
	"github.com/gossipkit/slicing/internal/churn"
	"github.com/gossipkit/slicing/internal/dist"
	"github.com/gossipkit/slicing/internal/ordering"
	"github.com/gossipkit/slicing/internal/sim"
)

// Simulation API (the paper's cycle model).
type (
	// SimConfig parameterizes a simulation; see the field docs.
	SimConfig = sim.Config
	// SimResult carries the recorded series of a run.
	SimResult = sim.Result
	// Simulation is a stepwise-controllable simulation engine.
	Simulation = sim.Engine
	// MessageCounts tallies delivered messages by type.
	MessageCounts = sim.MessageCounts
)

// Protocol kinds for SimConfig.Protocol.
const (
	// Ordering simulates JK / mod-JK (§4 of the paper).
	Ordering = sim.Ordering
	// Ranking simulates the rank-estimation protocol (§5).
	Ranking = sim.Ranking
)

// Membership kinds for SimConfig.Membership.
const (
	// CyclonViews is the Cyclon variant of §4.3.2 (default).
	CyclonViews = sim.CyclonViews
	// NewscastViews is the Newscast-like substrate.
	NewscastViews = sim.NewscastViews
	// UniformOracle re-draws views uniformly at random every cycle.
	UniformOracle = sim.UniformOracle
)

// Estimator kinds for SimConfig.Estimator.
const (
	// CounterEstimator is the unbounded ℓ/g counter (Fig. 5).
	CounterEstimator = sim.CounterEstimator
	// WindowEstimator is the sliding-window variant (§5.3.4).
	WindowEstimator = sim.WindowEstimator
)

// Partner-selection policies for SimConfig.Policy.
const (
	// JK picks a uniformly random misplaced neighbor.
	JK = ordering.SelectRandomMisplaced
	// ModJK picks the misplaced neighbor with the maximal local
	// disorder gain (the paper's contribution).
	ModJK = ordering.SelectMaxGain
	// RandomPartner picks any random neighbor (ablation baseline).
	RandomPartner = ordering.SelectRandom
)

// Attribute distributions for SimConfig.AttrDist. Every concrete source
// also implements AttrDistribution, exposing the analytic CDF and
// quantile function of its law: the true attribute threshold of a slice
// boundary b is Quantile(b), and the asymptotic normalized rank of a
// node with attribute x is CDF(x).
type (
	// AttrSource draws attribute values.
	AttrSource = dist.Source
	// AttrDistribution extends AttrSource with analytic CDF and
	// Quantile methods (all sources below implement it).
	AttrDistribution = dist.Distribution
	// UniformDist draws uniformly from [Lo, Hi).
	UniformDist = dist.Uniform
	// ParetoDist draws from a heavy-tailed Pareto distribution.
	ParetoDist = dist.Pareto
	// ExponentialDist draws exponentially distributed values.
	ExponentialDist = dist.Exponential
	// NormalDist draws normally distributed values.
	NormalDist = dist.Normal
	// ZipfDist draws ranks from the finite Zipf law on {1..N}.
	ZipfDist = dist.Zipf
	// LogNormalDist draws values whose logarithm is normal.
	LogNormalDist = dist.LogNormal
	// MixtureDist draws from a weighted mixture of component laws
	// (multi-modal populations).
	MixtureDist = dist.Mixture
	// MixtureComponent pairs a mixture component with its weight.
	MixtureComponent = dist.Weighted
	// EmpiricalDist replays a histogram-backed measured profile.
	EmpiricalDist = dist.Empirical
)

// NewEmpiricalDist bins raw samples (e.g. a bandwidth census) into an
// EmpiricalDist with the given number of equal-width bins.
func NewEmpiricalDist(samples []float64, bins int) (EmpiricalDist, error) {
	return dist.NewEmpirical(samples, bins)
}

// Churn models for SimConfig.Schedule / SimConfig.Pattern.
type (
	// ChurnSchedule decides when and how many nodes churn.
	ChurnSchedule = churn.Schedule
	// ChurnPattern decides which nodes leave and what joiners bring.
	ChurnPattern = churn.Pattern
	// NoChurn is the static system.
	NoChurn = churn.None
	// BurstChurn churns every cycle until a cutoff (Fig. 6(c)).
	BurstChurn = churn.Burst
	// PeriodicChurn churns every k-th cycle (Fig. 6(d)).
	PeriodicChurn = churn.Periodic
	// CorrelatedChurn removes the lowest-attribute nodes and admits
	// higher-attribute joiners (§5.3.3).
	CorrelatedChurn = churn.Correlated
	// UniformChurn removes random nodes and admits joiners from the
	// initial distribution.
	UniformChurn = churn.Uniform
)

// Simulate runs cfg for the given number of cycles and returns the
// recorded series.
func Simulate(cfg SimConfig, cycles int) (*SimResult, error) { return sim.Run(cfg, cycles) }

// NewSimulation builds a stepwise-controllable engine.
func NewSimulation(cfg SimConfig) (*Simulation, error) { return sim.New(cfg) }
