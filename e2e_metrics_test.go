package slicing_test

// CI's observability smoke: a served, instrumented cluster is stood up
// through the public facade alone, driven in virtual time, and its
// diagnostics are scraped over real HTTP — /metrics must parse as
// valid Prometheus text format and carry every golden live-plane
// metric family, and /debug/trace must dump recorded protocol events.
// The ci.yml "observability smoke" step runs exactly this test.

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"

	"github.com/gossipkit/slicing"
	"github.com/gossipkit/slicing/internal/telemetry"
)

func TestMetricsEndToEnd(t *testing.T) {
	part, err := slicing.EqualSlices(4)
	if err != nil {
		t.Fatal(err)
	}
	clock := slicing.NewVirtualClock()
	reg := slicing.NewTelemetry()
	ring := slicing.NewTraceRing(0)
	cluster, err := slicing.NewClusterWith(slicing.ClusterConfig{
		N: 32, Partition: part, ViewSize: 8,
		Protocol: slicing.LiveRanking,
		AttrDist: slicing.UniformDist{Lo: 0, Hi: 100},
		Seed:     3,
		Clock:    clock,
	},
		slicing.WithPeriod(servePeriod),
		slicing.WithServe("127.0.0.1:0"),
		slicing.WithTelemetry(reg),
		slicing.WithTrace(ring),
		slicing.WithDebug(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close(context.Background())
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Advance(10 * servePeriod); err != nil {
		t.Fatal(err)
	}
	base := "http://" + cluster.ServeAddr()

	// /metrics: valid exposition carrying every golden live-plane family.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	families, err := telemetry.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text format: %v", err)
	}
	golden, err := os.ReadFile("testdata/metric_names.golden")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range strings.Fields(string(golden)) {
		// Sim gauges only register when a simulation attaches, and
		// slicing_node_* families only on standalone nodes (a cluster
		// exposes scheduler aggregates instead); the runtime and serving
		// families must all be live in this scrape.
		if strings.HasPrefix(name, "slicing_sim_") || strings.HasPrefix(name, "slicing_node_") {
			continue
		}
		if _, ok := families[name]; !ok {
			t.Errorf("golden metric %s missing from the live /metrics scrape", name)
		}
	}

	// /debug/trace: protocol events were recorded and dump as JSON.
	resp2, err := http.Get(base + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace: status %d", resp2.StatusCode)
	}
	var dump slicing.TraceDump
	if err := json.NewDecoder(resp2.Body).Decode(&dump); err != nil {
		t.Fatalf("GET /debug/trace: decode: %v", err)
	}
	if dump.Total == 0 || len(dump.Events) == 0 {
		t.Errorf("trace dump is empty after 10 gossip periods: total=%d events=%d", dump.Total, len(dump.Events))
	}

	// /debug/pprof mounted via WithDebug.
	resp3, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/cmdline: status %d", resp3.StatusCode)
	}
}
