package slicing

// ---------------------------------------------------------------------
// Functional options: additive configuration for live nodes/clusters.
//
// NodeConfig and ClusterConfig are plain structs, and two of their
// fields carry zero-value footguns: a zero Period silently means "the
// runtime default", and a zero JitterFrac means DefaultJitterFrac —
// turning jitter OFF requires knowing the JitterNone sentinel. The
// options below make those intents explicit at the call site, and
// WithServe attaches the query plane (serve.go) in the same breath.
// The structs keep working unchanged; options are layered on top via
// NewNodeWith / NewClusterWith.
// ---------------------------------------------------------------------

import (
	"context"
	"time"
)

// Option adjusts a NodeConfig or ClusterConfig beyond its struct
// literal, resolving the zero-value ambiguities explicitly.
type Option func(*optionSet)

// optionSet accumulates applied options.
type optionSet struct {
	period    *time.Duration
	jitter    *float64
	serve     *ServeOptions
	telemetry *Telemetry
	trace     *TraceRing
	debug     bool
}

// WithPeriod sets the gossip period explicitly.
func WithPeriod(d time.Duration) Option {
	return func(o *optionSet) { o.period = &d }
}

// WithJitter sets the period desynchronization fraction explicitly.
// WithJitter(0) means strictly periodic gossip — unlike a zero
// JitterFrac field, which silently means DefaultJitterFrac.
func WithJitter(frac float64) Option {
	return func(o *optionSet) { o.jitter = &frac }
}

// WithServe mounts the query plane on addr (":8080"): the node or
// cluster answers GET /slice, /topk, /snapshot, /healthz and the
// /watch SSE stream from its local estimates. The server starts with
// Start and drains with Close.
func WithServe(addr string) Option {
	return func(o *optionSet) { o.serve = &ServeOptions{Addr: addr} }
}

// WithServeOptions is WithServe with full control over drain timeout
// and watch buffering.
func WithServeOptions(opts ServeOptions) Option {
	return func(o *optionSet) { o.serve = &opts }
}

// WithTelemetry attaches a metrics registry: the runtime's scheduler,
// churn and node instruments register in it, and a served node mounts
// its Prometheus handler at GET /metrics. Retrieve it later with
// Cluster.Metrics / Node.Metrics.
func WithTelemetry(reg *Telemetry) Option {
	return func(o *optionSet) { o.telemetry = reg }
}

// WithTrace attaches a protocol trace ring: the node's decision events
// (view exchanges, swap attempts, boundary crossings, rank updates)
// are recorded into it, and a served node dumps it at GET /debug/trace.
func WithTrace(ring *TraceRing) Option {
	return func(o *optionSet) { o.trace = ring }
}

// WithDebug mounts the pprof handlers under GET /debug/pprof/ on the
// served query plane (only meaningful together with WithServe).
func WithDebug() Option {
	return func(o *optionSet) { o.debug = true }
}

// apply folds the options into resolved period/jitter values.
func (o *optionSet) apply(opts []Option, period *time.Duration, jitter *float64) {
	for _, opt := range opts {
		opt(o)
	}
	if o.period != nil {
		*period = *o.period
	}
	if o.jitter != nil {
		if *o.jitter == 0 {
			*jitter = JitterNone
		} else {
			*jitter = *o.jitter
		}
	}
}

// serveOptions resolves the query-plane options, propagating the
// observability hooks onto the server unless WithServeOptions already
// set them explicitly.
func (o *optionSet) serveOptions() ServeOptions {
	opts := *o.serve
	if opts.Telemetry == nil {
		opts.Telemetry = o.telemetry
	}
	if opts.Trace == nil {
		opts.Trace = o.trace
	}
	if o.debug {
		opts.Debug = true
	}
	return opts
}

// calibrationFor picks the staleness calibration matching a protocol.
func calibrationFor(ordering bool) ServingCalibration {
	if ordering {
		return OrderingServingCalibration
	}
	return RankingServingCalibration
}

// ServedNode is a live node plus its (optional) query-plane server.
// Built by NewNodeWith; without WithServe it is just the node.
type ServedNode struct {
	*Node
	server *QueryServer
}

// NewNodeWith builds a live node with options applied on top of cfg.
// With WithServe, Start also binds the query server and Close drains
// it; the embedded Node is usable as usual.
func NewNodeWith(cfg NodeConfig, opts ...Option) (*ServedNode, error) {
	var o optionSet
	o.apply(opts, &cfg.Period, &cfg.JitterFrac)
	if o.telemetry != nil {
		cfg.Telemetry = o.telemetry
	}
	if o.trace != nil {
		cfg.Trace = o.trace
	}
	n, err := NewNode(cfg)
	if err != nil {
		return nil, err
	}
	sn := &ServedNode{Node: n}
	if o.serve != nil {
		q := NewNodeQuerier(n, calibrationFor(cfg.Protocol == LiveOrdering))
		sn.server = NewQueryServer(q, o.serveOptions())
	}
	return sn, nil
}

// Start starts gossip and, when serving, binds the query endpoint.
func (sn *ServedNode) Start() error {
	if err := sn.Node.Start(); err != nil {
		return err
	}
	if sn.server != nil {
		if err := sn.server.Start(); err != nil {
			sn.Node.Stop()
			return err
		}
	}
	return nil
}

// QueryServer returns the attached server, nil without WithServe.
func (sn *ServedNode) QueryServer() *QueryServer { return sn.server }

// ServeAddr reports the bound query-plane address ("" when not
// serving or not started).
func (sn *ServedNode) ServeAddr() string {
	if sn.server == nil {
		return ""
	}
	return sn.server.Addr()
}

// Close shuts the node down in departure order: the query plane drains
// first (the node stops answering before it stops gossiping — its
// departure is a real churn event to the rest of the system), then
// gossip stops.
func (sn *ServedNode) Close(ctx context.Context) error {
	var err error
	if sn.server != nil {
		err = sn.server.Shutdown(ctx)
	}
	sn.Node.Stop()
	return err
}

// ServedCluster is a live cluster plus its (optional) query-plane
// server, answering round-robin across the cluster's nodes.
type ServedCluster struct {
	*Cluster
	server *QueryServer
}

// NewClusterWith builds a cluster with options applied on top of cfg;
// see NewNodeWith.
func NewClusterWith(cfg ClusterConfig, opts ...Option) (*ServedCluster, error) {
	var o optionSet
	o.apply(opts, &cfg.Period, &cfg.JitterFrac)
	if o.telemetry != nil {
		cfg.Telemetry = o.telemetry
	}
	if o.trace != nil {
		cfg.Trace = o.trace
	}
	c, err := NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	sc := &ServedCluster{Cluster: c}
	if o.serve != nil {
		q, err := NewClusterQuerier(c, calibrationFor(cfg.Protocol == LiveOrdering))
		if err != nil {
			c.Stop()
			return nil, err
		}
		sc.server = NewQueryServer(q, o.serveOptions())
	}
	return sc, nil
}

// Start starts the cluster and, when serving, binds the query endpoint.
func (sc *ServedCluster) Start() error {
	if err := sc.Cluster.Start(); err != nil {
		return err
	}
	if sc.server != nil {
		if err := sc.server.Start(); err != nil {
			sc.Cluster.Stop()
			return err
		}
	}
	return nil
}

// QueryServer returns the attached server, nil without WithServe.
func (sc *ServedCluster) QueryServer() *QueryServer { return sc.server }

// ServeAddr reports the bound query-plane address ("" when not
// serving or not started).
func (sc *ServedCluster) ServeAddr() string {
	if sc.server == nil {
		return ""
	}
	return sc.server.Addr()
}

// Close drains the query plane, then stops the cluster.
func (sc *ServedCluster) Close(ctx context.Context) error {
	var err error
	if sc.server != nil {
		err = sc.server.Shutdown(ctx)
	}
	sc.Cluster.Stop()
	return err
}
