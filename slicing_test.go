package slicing_test

import (
	"testing"
	"time"

	slicing "github.com/gossipkit/slicing"
)

// The public API must support the README quickstart end to end.
func TestPublicSimulationAPI(t *testing.T) {
	res, err := slicing.Simulate(slicing.SimConfig{
		N: 300, Slices: 10, ViewSize: 10,
		Protocol: slicing.Ranking,
		AttrDist: slicing.UniformDist{Lo: 0, Hi: 1000},
		Seed:     1,
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	first, ok := res.SDM.At(0)
	if !ok {
		t.Fatal("no initial SDM")
	}
	last, ok := res.SDM.Last()
	if !ok {
		t.Fatal("no final SDM")
	}
	if last.Value >= first {
		t.Errorf("SDM did not improve: %v → %v", first, last.Value)
	}
	if res.FinalN != 300 {
		t.Errorf("FinalN = %d, want 300", res.FinalN)
	}
}

func TestPublicOrderingPolicies(t *testing.T) {
	policies := map[string]slicing.SimConfig{
		"jk":      {Policy: slicing.JK},
		"mod-jk":  {Policy: slicing.ModJK},
		"random":  {Policy: slicing.RandomPartner},
		"default": {},
	}
	for name, overlay := range policies {
		t.Run(name, func(t *testing.T) {
			cfg := slicing.SimConfig{
				N: 200, Slices: 5, ViewSize: 10,
				Protocol: slicing.Ordering,
				Policy:   overlay.Policy,
				AttrDist: slicing.ParetoDist{Xm: 1, Alpha: 1.5},
				Seed:     2,
			}
			res, err := slicing.Simulate(cfg, 50)
			if err != nil {
				t.Fatal(err)
			}
			if res.Messages.SwapRequests == 0 {
				t.Error("ordering run exchanged no swaps")
			}
		})
	}
}

func TestPublicPartitions(t *testing.T) {
	part, err := slicing.EqualSlices(4)
	if err != nil {
		t.Fatal(err)
	}
	if part.Len() != 4 {
		t.Errorf("Len = %d, want 4", part.Len())
	}
	custom, err := slicing.CustomSlices(0.8)
	if err != nil {
		t.Fatal(err)
	}
	top := custom.Slice(1)
	if top.Low != 0.8 || top.High != 1 {
		t.Errorf("top slice = %v, want (0.8,1]", top)
	}
	if _, err := slicing.CustomSlices(2.0); err == nil {
		t.Error("invalid boundary accepted")
	}
}

func TestPublicChurnTypes(t *testing.T) {
	res, err := slicing.Simulate(slicing.SimConfig{
		N: 200, Slices: 5, ViewSize: 10,
		Protocol: slicing.Ranking,
		AttrDist: slicing.UniformDist{Lo: 0, Hi: 100},
		Schedule: slicing.BurstChurn{Rate: 0.01, Until: 10},
		Pattern:  slicing.CorrelatedChurn{Spread: 5},
		Seed:     3,
	}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalN != 200 {
		t.Errorf("FinalN = %d, want 200 (balanced churn)", res.FinalN)
	}
}

func TestPublicLiveCluster(t *testing.T) {
	part, err := slicing.EqualSlices(3)
	if err != nil {
		t.Fatal(err)
	}
	// Driven mode: the cluster runs on a virtual clock, so the test
	// advances time instead of sleeping against a wall-clock deadline.
	cluster, err := slicing.NewCluster(slicing.ClusterConfig{
		N: 12, Partition: part, ViewSize: 5,
		Protocol: slicing.LiveRanking,
		Period:   2 * time.Millisecond,
		AttrDist: slicing.UniformDist{Lo: 0, Hi: 100},
		Seed:     4,
		Clock:    slicing.NewVirtualClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	for cycles := 0; cluster.MisassignedFraction() > 0.35; cycles++ {
		if cycles > 500 {
			t.Fatalf("cluster stuck at %v misassigned", cluster.MisassignedFraction())
		}
		if err := cluster.Advance(2 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range cluster.Nodes() {
		st := n.Status()
		if !st.Slice.Valid() {
			t.Errorf("node %v reports invalid slice %v", st.ID, st.Slice)
		}
	}
	if cluster.MessageCounts().Total() == 0 {
		t.Error("no traffic on the cluster's internal network")
	}
}

// One spec, two engines, through the public API: the same scenario spec
// executes on both backends and both converge.
func TestPublicScenarioBackends(t *testing.T) {
	sc, err := slicing.LookupScenario("live-convergence")
	if err != nil {
		t.Fatal(err)
	}
	var spec slicing.ScenarioSpec
	for _, s := range sc.Specs {
		if s.Name == "ranking" {
			spec = s.Scaled(0.1)
		}
	}
	spec.Seed = 8
	for _, name := range []string{slicing.BackendSim, slicing.BackendLive} {
		backend, err := slicing.ScenarioBackendByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := backend.Run(spec)
		if err != nil {
			t.Fatalf("%s backend: %v", name, err)
		}
		first := res.SDM.Points[0].Value
		last, _ := res.SDM.Last()
		if last.Value >= first {
			t.Errorf("%s backend did not converge: SDM %v → %v", name, first, last.Value)
		}
	}
	if _, err := slicing.ScenarioBackendByName("nope"); err == nil {
		t.Error("unknown backend name accepted")
	}
}

// The jitter sentinel is reachable from the public surface.
func TestPublicJitterSentinel(t *testing.T) {
	if slicing.JitterNone >= 0 {
		t.Error("JitterNone must be negative (zero means default)")
	}
	if slicing.DefaultJitterFrac <= 0 {
		t.Error("DefaultJitterFrac must be positive")
	}
	part, err := slicing.EqualSlices(2)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := slicing.NewCluster(slicing.ClusterConfig{
		N: 4, Partition: part, ViewSize: 3,
		Protocol:   slicing.LiveRanking,
		Period:     time.Millisecond,
		JitterFrac: slicing.JitterNone,
		AttrDist:   slicing.UniformDist{Lo: 0, Hi: 10},
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Stop()
}

func TestPublicStats(t *testing.T) {
	k, err := slicing.RequiredSamples(0.05, 0.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if k < 300 || k > 500 {
		t.Errorf("RequiredSamples = %d, want ≈ 385", k)
	}
	bound, err := slicing.SliceDeviationBound(10000, 0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if bound <= 0 || bound >= 1 {
		t.Errorf("SliceDeviationBound = %v", bound)
	}
	w, err := slicing.MinSliceWidth(10000, 0.2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 {
		t.Errorf("MinSliceWidth = %v", w)
	}
}

func TestPublicEstimators(t *testing.T) {
	c := slicing.NewCounterEstimator()
	c.Observe(true)
	if c.Estimate() != 1 {
		t.Error("counter estimator broken through the facade")
	}
	w, err := slicing.NewWindowEstimator(8)
	if err != nil {
		t.Fatal(err)
	}
	w.Observe(false)
	if w.Estimate() != 0 {
		t.Error("window estimator broken through the facade")
	}
	if _, err := slicing.NewWindowEstimator(0); err == nil {
		t.Error("zero-size window accepted")
	}
}

func TestPublicMeasures(t *testing.T) {
	part, _ := slicing.EqualSlices(2)
	states := []slicing.NodeState{
		{Member: slicing.Member{ID: 1, Attr: 10}, R: 0.2, SliceIndex: 0},
		{Member: slicing.Member{ID: 2, Attr: 20}, R: 0.9, SliceIndex: 1},
	}
	if got := slicing.SDM(states, part); got != 0 {
		t.Errorf("SDM = %v, want 0", got)
	}
	if got := slicing.GDM(states); got != 0 {
		t.Errorf("GDM = %v, want 0", got)
	}
}
