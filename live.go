package slicing

// ---------------------------------------------------------------------
// Live runtime facade: real protocol participants.
//
// Where the simulator models cycles, the runtime runs nodes: each Node
// gossips on its own schedule over a Transport (in-memory or TCP), and
// a Cluster multiplexes thousands of them onto a sharded scheduler in
// one process. A VirtualClock puts a cluster in driven mode — the same
// concurrent code paths, no wall time spent waiting — which is how the
// live scenario backend and the e2e tests run. This section exports
// the runtime, its transports, and the jitter/clock vocabulary;
// options.go layers functional options (WithPeriod, WithJitter,
// WithServe) on top of these configs.
// ---------------------------------------------------------------------

import (
	"time"

	"github.com/gossipkit/slicing/internal/ranking"
	"github.com/gossipkit/slicing/internal/runtime"
	"github.com/gossipkit/slicing/internal/transport"
	"github.com/gossipkit/slicing/internal/transport/tcp"
)

// Live runtime API.
type (
	// Node is a live protocol participant.
	Node = runtime.Node
	// NodeConfig parameterizes a live node.
	NodeConfig = runtime.NodeConfig
	// NodeStatus is a point-in-time node snapshot.
	NodeStatus = runtime.Status
	// Cluster is a process-local set of live nodes, multiplexed onto a
	// sharded scheduler (a fixed worker pool draining per-shard timer
	// wheels) so one process sustains 10,000+ gossiping nodes.
	Cluster = runtime.Cluster
	// ClusterConfig parameterizes a cluster.
	ClusterConfig = runtime.ClusterConfig
	// ClusterMessageCounts tallies a cluster's internal-network traffic.
	ClusterMessageCounts = runtime.MessageCounts
	// Estimator accumulates rank observations for a ranking node.
	Estimator = ranking.Estimator
	// LiveClock abstracts time for a cluster's scheduler.
	LiveClock = runtime.Clock
	// VirtualClock is a manually advanced clock: handing one to a
	// cluster puts it in driven mode, where time moves only through
	// Cluster.Advance — the same concurrent code paths as wall-clock
	// operation, with no wall time spent waiting for gossip periods.
	VirtualClock = runtime.VirtualClock
)

// NewVirtualClock returns a virtual clock for driven clusters.
func NewVirtualClock() *VirtualClock { return runtime.NewVirtualClock() }

// Jitter configuration for NodeConfig/ClusterConfig.JitterFrac.
const (
	// DefaultJitterFrac is the period desynchronization used when
	// JitterFrac is left zero.
	DefaultJitterFrac = runtime.DefaultJitterFrac
	// JitterNone requests strictly periodic gossip (a zero JitterFrac
	// means "default", so jitter-free operation needs the explicit
	// sentinel).
	JitterNone = runtime.JitterNone
)

// Live protocol and membership kinds (runtime flavors of the simulation
// constants).
const (
	// LiveOrdering runs JK / mod-JK on a live node.
	LiveOrdering = runtime.Ordering
	// LiveRanking runs the ranking protocol on a live node.
	LiveRanking = runtime.Ranking
	// LiveCyclon selects the Cyclon-variant substrate.
	LiveCyclon = runtime.CyclonViews
	// LiveNewscast selects the Newscast-like substrate.
	LiveNewscast = runtime.NewscastViews
)

// NewNode builds a live node; call Start to begin gossiping.
func NewNode(cfg NodeConfig) (*Node, error) { return runtime.NewNode(cfg) }

// NewCluster builds a process-local cluster of live nodes.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return runtime.NewCluster(cfg) }

// NewCounterEstimator returns the unbounded ℓ/g estimator of Fig. 5.
func NewCounterEstimator() Estimator { return ranking.NewCounter() }

// NewWindowEstimator returns the sliding-window estimator of §5.3.4.
func NewWindowEstimator(size int) (Estimator, error) { return ranking.NewWindow(size) }

// Transports.
type (
	// Transport routes protocol messages between live nodes.
	Transport = transport.Transport
	// InMemTransportOptions configures the in-memory transport.
	InMemTransportOptions = transport.InMemOptions
	// TCPTransportOptions configures the TCP transport.
	TCPTransportOptions = tcp.Options
	// TCPTransport is the TCP-backed transport.
	TCPTransport = tcp.Transport
)

// NewInMemTransport builds a process-local transport with optional
// latency and loss injection.
func NewInMemTransport(opts InMemTransportOptions) Transport {
	return transport.NewInMem(opts)
}

// NewTCPTransport starts a TCP transport listening per opts.
func NewTCPTransport(opts TCPTransportOptions) (*TCPTransport, error) {
	return tcp.New(opts)
}

// DefaultPeriod is a reasonable live gossip period for LAN deployments.
const DefaultPeriod = 500 * time.Millisecond
