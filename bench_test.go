// Benchmarks regenerating every figure and analytic result of the
// paper's evaluation (one benchmark per figure, reporting the final SDM
// as a custom metric), the ablation benches called out in DESIGN.md §5,
// and micro-benchmarks of the hot paths.
//
// Figure benches run at a reduced scale so the whole suite completes in
// minutes; cmd/slicesim regenerates the same experiments at paper scale.
package slicing_test

import (
	"strconv"
	"testing"

	slicing "github.com/gossipkit/slicing"
	"github.com/gossipkit/slicing/internal/experiments"
)

const benchScale = 0.02 // 200 nodes, proportional cycle counts

func reportFinal(b *testing.B, res *experiments.Result) {
	b.Helper()
	for _, s := range res.Series {
		if p, ok := s.Last(); ok {
			b.ReportMetric(p.Value, "final-"+s.Name)
		}
	}
}

func benchFigure(b *testing.B, name string) {
	fn, err := experiments.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := fn(experiments.Options{Scale: benchScale, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportFinal(b, last)
}

// BenchmarkFig4a regenerates Figure 4(a): GDM vs SDM for mod-JK.
func BenchmarkFig4a(b *testing.B) { benchFigure(b, "fig4a") }

// BenchmarkFig4b regenerates Figure 4(b): JK vs mod-JK convergence.
func BenchmarkFig4b(b *testing.B) { benchFigure(b, "fig4b") }

// BenchmarkFig4c regenerates Figure 4(c): unsuccessful swaps under
// concurrency.
func BenchmarkFig4c(b *testing.B) { benchFigure(b, "fig4c") }

// BenchmarkFig4d regenerates Figure 4(d): convergence under full
// concurrency.
func BenchmarkFig4d(b *testing.B) { benchFigure(b, "fig4d") }

// BenchmarkFig6a regenerates Figure 6(a): ordering vs ranking, static.
func BenchmarkFig6a(b *testing.B) { benchFigure(b, "fig6a") }

// BenchmarkFig6b regenerates Figure 6(b): Cyclon views vs uniform oracle.
func BenchmarkFig6b(b *testing.B) { benchFigure(b, "fig6b") }

// BenchmarkFig6c regenerates Figure 6(c): churn burst recovery.
func BenchmarkFig6c(b *testing.B) { benchFigure(b, "fig6c") }

// BenchmarkFig6d regenerates Figure 6(d): sustained churn and the
// sliding window.
func BenchmarkFig6d(b *testing.B) { benchFigure(b, "fig6d") }

// BenchmarkDrift regenerates the value-drift extension experiment.
func BenchmarkDrift(b *testing.B) { benchFigure(b, "drift") }

// BenchmarkHeavyTail regenerates the Pareto analytic-vs-simulated
// extension experiment.
func BenchmarkHeavyTail(b *testing.B) { benchFigure(b, "heavytail") }

// BenchmarkBimodal regenerates the bimodal-mixture distribution-freeness
// extension experiment.
func BenchmarkBimodal(b *testing.B) { benchFigure(b, "bimodal") }

// BenchmarkLemma41 validates the Lemma 4.1 bound table.
func BenchmarkLemma41(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Lemma41(experiments.Options{Scale: 0.05, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThm51 validates the Theorem 5.1 sample-size table.
func BenchmarkThm51(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Thm51(experiments.Options{Scale: 0.2, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvenSplit validates the §4.4 even-split probability table.
func BenchmarkEvenSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.EvenSplit(experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkSelectionPolicies ablates the swap-partner heuristic: random
// neighbor vs random misplaced (JK) vs max gain (mod-JK). The final-sdm
// metric after a fixed budget of cycles quantifies each heuristic's
// contribution.
func BenchmarkSelectionPolicies(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy any
	}{
		{"random", slicing.RandomPartner},
		{"jk-random-misplaced", slicing.JK},
		{"mod-jk-max-gain", slicing.ModJK},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				cfg := slicing.SimConfig{
					N: 300, Slices: 10, ViewSize: 20,
					Protocol: slicing.Ordering,
					AttrDist: slicing.UniformDist{Lo: 0, Hi: 1000},
					Seed:     int64(i + 1),
				}
				switch tc.name {
				case "random":
					cfg.Policy = slicing.RandomPartner
				case "jk-random-misplaced":
					cfg.Policy = slicing.JK
				default:
					cfg.Policy = slicing.ModJK
				}
				res, err := slicing.Simulate(cfg, 15)
				if err != nil {
					b.Fatal(err)
				}
				if p, ok := res.SDM.Last(); ok {
					final = p.Value
				}
			}
			b.ReportMetric(final, "final-sdm")
		})
	}
}

// BenchmarkViewSize sweeps the gossip view capacity c: larger views find
// misplaced partners (and attribute samples) faster per cycle at a
// higher per-cycle cost.
func BenchmarkViewSize(b *testing.B) {
	for _, c := range []int{5, 10, 20, 40} {
		b.Run(benchName("c", c), func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				res, err := slicing.Simulate(slicing.SimConfig{
					N: 300, Slices: 10, ViewSize: c,
					Protocol: slicing.Ordering, Policy: slicing.ModJK,
					AttrDist: slicing.UniformDist{Lo: 0, Hi: 1000},
					Seed:     int64(i + 1),
				}, 15)
				if err != nil {
					b.Fatal(err)
				}
				if p, ok := res.SDM.Last(); ok {
					final = p.Value
				}
			}
			b.ReportMetric(final, "final-sdm")
		})
	}
}

// BenchmarkBoundaryBias ablates the ranking protocol's boundary-closest
// targeting (Fig. 5 j1) against two uniformly random targets.
func BenchmarkBoundaryBias(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{
		{"boundary-biased", false},
		{"random-targets", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				res, err := slicing.Simulate(slicing.SimConfig{
					N: 300, Slices: 10, ViewSize: 10,
					Protocol:            slicing.Ranking,
					DisableBoundaryBias: tc.disable,
					AttrDist:            slicing.UniformDist{Lo: 0, Hi: 1000},
					Seed:                int64(i + 1),
				}, 100)
				if err != nil {
					b.Fatal(err)
				}
				if p, ok := res.SDM.Last(); ok {
					final = p.Value
				}
			}
			b.ReportMetric(final, "final-sdm")
		})
	}
}

// BenchmarkWindowSize sweeps the sliding-window size under sustained
// correlated churn: small windows track drift but carry sampling noise;
// large windows are smooth but stale.
func BenchmarkWindowSize(b *testing.B) {
	for _, w := range []int{200, 1000, 5000} {
		b.Run(benchName("w", w), func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				res, err := slicing.Simulate(slicing.SimConfig{
					N: 300, Slices: 10, ViewSize: 10,
					Protocol:  slicing.Ranking,
					Estimator: slicing.WindowEstimator, WindowSize: w,
					AttrDist: slicing.UniformDist{Lo: 0, Hi: 1000},
					Schedule: slicing.PeriodicChurn{Rate: 0.002, Every: 5},
					Pattern:  slicing.CorrelatedChurn{Spread: 10},
					Seed:     int64(i + 1),
				}, 300)
				if err != nil {
					b.Fatal(err)
				}
				if p, ok := res.SDM.Last(); ok {
					final = p.Value
				}
			}
			b.ReportMetric(final, "final-sdm")
		})
	}
}

// BenchmarkEstimatorSources ablates the ranking estimator's inputs: view
// scans + messages (the paper) vs messages only.
func BenchmarkEstimatorSources(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{
		{"views-and-messages", false},
		{"messages-only", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				res, err := slicing.Simulate(slicing.SimConfig{
					N: 300, Slices: 10, ViewSize: 10,
					Protocol:        slicing.Ranking,
					DisableViewScan: tc.disable,
					AttrDist:        slicing.UniformDist{Lo: 0, Hi: 1000},
					Seed:            int64(i + 1),
				}, 100)
				if err != nil {
					b.Fatal(err)
				}
				if p, ok := res.SDM.Last(); ok {
					final = p.Value
				}
			}
			b.ReportMetric(final, "final-sdm")
		})
	}
}

// --- Micro-benchmarks ---

// BenchmarkSimulationCycle measures one whole engine cycle (membership +
// protocol + metrics) per protocol at n=1000.
func BenchmarkSimulationCycle(b *testing.B) {
	for _, tc := range []struct {
		name     string
		protocol any
	}{
		{"ordering", nil},
		{"ranking", nil},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := slicing.SimConfig{
				N: 1000, Slices: 10, ViewSize: 20,
				AttrDist: slicing.UniformDist{Lo: 0, Hi: 1000},
				Seed:     1,
			}
			if tc.name == "ordering" {
				cfg.Protocol = slicing.Ordering
				cfg.Policy = slicing.ModJK
			} else {
				cfg.Protocol = slicing.Ranking
			}
			engine, err := slicing.NewSimulation(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				engine.Step()
			}
		})
	}
}

// BenchmarkSDM measures the slice disorder computation on 10⁴ nodes.
func BenchmarkSDM(b *testing.B) {
	part, err := slicing.EqualSlices(100)
	if err != nil {
		b.Fatal(err)
	}
	states := make([]slicing.NodeState, 10000)
	for i := range states {
		states[i] = slicing.NodeState{
			Member:     slicing.Member{ID: slicing.ID(i + 1), Attr: slicing.Attr(i * 7 % 1000)},
			R:          float64(i%97) / 97,
			SliceIndex: i % 100,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slicing.SDM(states, part)
	}
}

// BenchmarkGDM measures the global disorder computation on 10⁴ nodes.
func BenchmarkGDM(b *testing.B) {
	states := make([]slicing.NodeState, 10000)
	for i := range states {
		states[i] = slicing.NodeState{
			Member: slicing.Member{ID: slicing.ID(i + 1), Attr: slicing.Attr(i * 7 % 1000)},
			R:      float64(i%97) / 97,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slicing.GDM(states)
	}
}

// BenchmarkEstimators measures a single estimator observation.
func BenchmarkEstimators(b *testing.B) {
	b.Run("counter", func(b *testing.B) {
		est := slicing.NewCounterEstimator()
		for i := 0; i < b.N; i++ {
			est.Observe(i%3 == 0)
		}
	})
	b.Run("window-10k", func(b *testing.B) {
		est, err := slicing.NewWindowEstimator(10000)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			est.Observe(i%3 == 0)
		}
	})
}

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}
