package slicing

// ---------------------------------------------------------------------
// Telemetry facade: metrics and protocol traces.
//
// internal/telemetry is a stdlib-only metrics plane — atomic counters,
// gauges and fixed-bucket histograms behind a hand-rolled Prometheus
// text-format handler — plus a lock-free ring of protocol decision
// events. This section re-exports the two consumer-facing pieces: the
// registry a caller attaches to a node or cluster (WithTelemetry) and
// the trace ring (WithTrace). Registry.Handler() serves the scrape
// endpoint; a served node mounts it at GET /metrics automatically.
// ---------------------------------------------------------------------

import (
	"github.com/gossipkit/slicing/internal/telemetry"
)

// Telemetry types.
type (
	// Telemetry is a metrics registry: counters, gauges and histograms
	// with Prometheus text-format exposition (Handler) and expvar
	// mirroring (PublishExpvar).
	Telemetry = telemetry.Registry
	// TraceRing is a bounded lock-free buffer of protocol decision
	// events; full rings overwrite oldest-first.
	TraceRing = telemetry.TraceRing
	// TraceEvent is one recorded protocol decision.
	TraceEvent = telemetry.TraceEvent
	// TraceKind labels a TraceEvent (view exchange, swap attempt,
	// boundary crossing, …).
	TraceKind = telemetry.TraceKind
	// TraceDump is the JSON shape of a dumped ring.
	TraceDump = telemetry.TraceDump
)

// Trace event kinds.
const (
	// TraceViewExchange records a membership gossip exchange.
	TraceViewExchange = telemetry.TraceViewExchange
	// TraceSwapRequest records an ordering-protocol swap attempt.
	TraceSwapRequest = telemetry.TraceSwapRequest
	// TraceSwapApplied records an adopted swap.
	TraceSwapApplied = telemetry.TraceSwapApplied
	// TraceSwapFailed records a swap rejected by its receiver.
	TraceSwapFailed = telemetry.TraceSwapFailed
	// TraceSwapAbandoned records a swap abandoned unsent.
	TraceSwapAbandoned = telemetry.TraceSwapAbandoned
	// TraceBoundaryCross records a node changing slices.
	TraceBoundaryCross = telemetry.TraceBoundaryCross
	// TraceRankUpdate records a rank-estimate revision.
	TraceRankUpdate = telemetry.TraceRankUpdate
)

// NewTelemetry builds an empty metrics registry. Attach it with
// WithTelemetry (or ClusterConfig.Telemetry / NodeConfig.Telemetry)
// and serve Handler() — a served node does both for you and exposes
// GET /metrics.
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// NewTraceRing builds a protocol trace ring holding capacity events
// (rounded up to a power of two; capacity <= 0 selects the default).
// Attach it with WithTrace; a served node dumps it at GET /debug/trace.
func NewTraceRing(capacity int) *TraceRing { return telemetry.NewTraceRing(capacity) }
