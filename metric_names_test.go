package slicing

// The golden metric-names test: the registry metric names exported at
// /metrics are an operational contract — dashboards, alerts and scrape
// configs reference them by name — so renames and removals are
// breaking. This test attaches one registry to every instrumented
// layer (live cluster, standalone node, query server, simulator),
// collects the registered family names, and compares them against
// testdata/metric_names.golden. The set is locked additive-only: new
// names are blessed with
//
//	go test -run TestMetricNames -update
//
// while a missing golden name always fails, bless or no bless.

import (
	"os"
	"slices"
	"strings"
	"testing"
)

const metricNamesGolden = "testdata/metric_names.golden"

func TestMetricNames(t *testing.T) {
	reg := NewTelemetry()
	ring := NewTraceRing(64)
	part, err := EqualSlices(4)
	if err != nil {
		t.Fatal(err)
	}

	// Live cluster: scheduler + churn metrics. Construction registers;
	// the cluster never starts.
	cluster, err := NewClusterWith(ClusterConfig{
		N: 4, Partition: part, ViewSize: 4,
		Protocol: LiveRanking,
		AttrDist: UniformDist{Lo: 0, Hi: 100},
		Seed:     1,
		Clock:    NewVirtualClock(),
	}, WithPeriod(DefaultPeriod), WithTelemetry(reg), WithTrace(ring))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Cluster.Stop()
	if cluster.Cluster.Metrics() != reg {
		t.Error("Cluster.Metrics() does not return the attached registry")
	}

	// Standalone node: per-node metrics.
	tr, err := NewTCPTransport(TCPTransportOptions{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	node, err := NewNode(NodeConfig{
		ID: 1, Attr: 10, Partition: part, ViewSize: 4,
		Protocol: LiveRanking, Estimator: NewCounterEstimator(),
		Transport: tr, Seed: 1, Period: DefaultPeriod, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = node

	// Query server: serving metrics.
	q, err := NewClusterQuerier(cluster.Cluster, RankingServingCalibration)
	if err != nil {
		t.Fatal(err)
	}
	NewQueryServer(q, ServeOptions{Telemetry: reg})

	// Simulator: cycle gauges and phase timings.
	if _, err := NewSimulation(SimConfig{
		N: 16, Slices: 4, ViewSize: 4,
		Protocol:  Ranking,
		AttrDist:  UniformDist{Lo: 0, Hi: 100},
		Seed:      1,
		Telemetry: reg,
	}); err != nil {
		t.Fatal(err)
	}

	got := reg.Names()
	if *updateGolden {
		if err := os.WriteFile(metricNamesGolden, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("blessed %s with %d metric names", metricNamesGolden, len(got))
		return
	}
	raw, err := os.ReadFile(metricNamesGolden)
	if err != nil {
		t.Fatalf("read %s: %v (bless with `go test -run TestMetricNames -update`)", metricNamesGolden, err)
	}
	want := strings.Fields(strings.TrimSpace(string(raw)))

	var missing, added []string
	for _, name := range want {
		if !slices.Contains(got, name) {
			missing = append(missing, name)
		}
	}
	for _, name := range got {
		if !slices.Contains(want, name) {
			added = append(added, name)
		}
	}
	if len(missing) > 0 {
		t.Errorf("BREAKING: metric names removed or renamed (dashboards and alerts reference these):\n  - %s",
			strings.Join(missing, "\n  - "))
	}
	if len(added) > 0 {
		t.Errorf("new metric names (additive — bless with `go test -run TestMetricNames -update`):\n  + %s",
			strings.Join(added, "\n  + "))
	}
}
