# Targets mirror .github/workflows/ci.yml exactly: `make ci` locally is
# the same bar the PR gate applies.

GO ?= go

.PHONY: all build test bench bench-json lint ci

all: build

build:
	$(GO) build ./...
	$(GO) build ./examples/...

test:
	$(GO) test -race ./...

# One iteration per benchmark: a smoke pass that proves they still run.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# A small sweep over the full scenario catalog via slicebench: every
# registered scenario must smoke-run, and the per-run wall time and
# cycles/sec land in BENCH_sweep.json (CI uploads it as an artifact).
# The scale-* family additionally runs at FULL scale — N=10k/50k/100k,
# single worker, timing on — so BENCH_scale.json tracks the engine's
# cycles/sec as a function of N from build to build.
bench-json:
	$(GO) run ./cmd/slicebench sweep -scenarios all -scale 0.01 -workers 4 \
		-out BENCH_sweep.json -quiet
	@echo "wrote BENCH_sweep.json"
	$(GO) run ./cmd/slicebench sweep -scenarios scale-10k,scale-50k,scale-100k \
		-workers 1 -out BENCH_scale.json -quiet
	@echo "wrote BENCH_scale.json"

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

ci: lint build test bench bench-json
