# Targets mirror .github/workflows/ci.yml exactly: `make ci` locally is
# the same bar the PR gate applies.

GO ?= go

.PHONY: all build test test-serial test-hot bench bench-json bench-compare profile scale-smoke serve-bench obs-smoke chaos-smoke lint ci

all: build

build:
	$(GO) build ./...
	$(GO) build ./examples/...

test:
	$(GO) test -race ./...

# The tier-1 tests again under GOMAXPROCS=1: the parallel cycle engine
# must be bit-identical at any worker count AND on any scheduler — a
# commit phase that accidentally depended on goroutine scheduling order
# would show up as a diff between this pass and the default one.
test-serial:
	GOMAXPROCS=1 $(GO) test -count=1 ./...

# An explicit, uncached race pass over the concurrency-heavy packages:
# the sharded scheduler / live clusters, both transports, and the
# simulator's parallel cycle engine (worker-count invariance + the
# N=10,000 parallel run). `make test` covers them too, but this target
# re-executes them even when cached — interleavings differ run to run,
# so caching hides races.
test-hot:
	$(GO) test -race -count=1 ./internal/runtime/... ./internal/transport/...
	$(GO) test -race -count=1 -run 'TestWorkerCountInvariance|TestParallelEngineAtScale' ./internal/sim

# One iteration per benchmark: a smoke pass that proves they still run.
# -short skips the n=1,000,000 EngineScaling rows — the million-node
# tier is exercised by scale-smoke and the scale-1m sweep instead of
# paying twelve 2 GB engine constructions here.
bench:
	$(GO) test -short -bench=. -benchtime=1x -run='^$$' ./...

# A small sweep over the full scenario catalog via slicebench: every
# registered scenario must smoke-run, and the per-run wall time and
# cycles/sec land in BENCH_sweep.json (CI uploads it as an artifact).
# The scale-* family additionally runs at FULL scale — N=10k/50k/100k
# plus the million-node tier (scale-1m, ~1.9 GB of engine state), one
# run at a time. The engine runs serial here (-simworkers 1): the CI
# box has one core, where worker goroutines only add handoff overhead,
# and results are bit-identical at any worker count — the parallel path
# is pinned by TestWorkerCountInvariance and the equivalence suite, not
# by this sweep. BENCH_scale.json tracks the engine's cycles/sec
# (per-phase wall split included) as a function of N
# from build to build, with per-run memory budgets (arena/state/staging
# bytes per node) recorded alongside timing. The four raw files then
# consolidate into
# BENCH_summary.json (scenario → finalSDM, cyclesPerSec, backend): one
# stable cross-PR shape that `slicebench compare` can diff between
# builds to gate perf regressions.
bench-json:
	$(GO) run ./cmd/slicebench sweep -scenarios all -scale 0.01 -workers 4 \
		-out BENCH_sweep.json -quiet
	@echo "wrote BENCH_sweep.json"
	$(GO) run ./cmd/slicebench sweep -scenarios scale-10k,scale-50k,scale-100k,scale-1m \
		-workers 1 -simworkers 1 -out BENCH_scale.json -quiet
	@echo "wrote BENCH_scale.json"
	$(GO) run ./cmd/slicebench sweep -backend live -scale 0.1 -workers 2 \
		-out BENCH_live.json -quiet
	@echo "wrote BENCH_live.json"
	$(GO) run ./cmd/slicebench sweep -backend live -scenarios live-scale-10k \
		-workers 1 -out BENCH_live10k.json -quiet
	@echo "wrote BENCH_live10k.json (n=10,000 live convergence run)"
	$(GO) run ./cmd/slicebench summarize BENCH_sweep.json BENCH_scale.json \
		BENCH_live.json BENCH_live10k.json -out BENCH_summary.json
	@echo "wrote BENCH_summary.json (consolidated cross-PR benchmark shape)"

# The perf regression gate: diff the fresh BENCH_summary.json against
# the blessed baseline checked into the repo. Fails when the MEDIAN
# cycles/sec drop across the gated runs exceeds 15% — a code regression
# slows most runs, while shared-runner noise swings individual runs
# both directions — or when any run (of any size) silently vanishes
# from the artifact. Only runs with >=1s baseline wall time are gated:
# the sub-second catalog smoke runs execute 4-wide on shared CPUs,
# where per-run wall time is pure scheduling noise. Per-run deltas stay
# in the table for human eyes. Bless an intentional slowdown with
# `cp BENCH_summary.json BENCH_baseline.json` and commit the diff.
bench-compare:
	$(GO) run ./cmd/slicebench compare BENCH_baseline.json BENCH_summary.json \
		-fail-above 15 -min-wall-ms 1000

# Profile a spec's hot loop: capture CPU + heap profiles of one run
# (defaults: the N=100k ordering run, 10 cycles, serial engine — the
# same kernel mix the scale sweep gates) and print the top-20 flat CPU
# report. Override with PROFILE_SPEC / PROFILE_CYCLES /
# PROFILE_SIMWORKERS, e.g.
#   make profile PROFILE_SPEC=scale-1m PROFILE_CYCLES=5
# cpu.prof / mem.prof land in the working tree (gitignored) so CI can
# upload them as on-demand artifacts; drill past the flat report with
# `go tool pprof cpu.prof`.
PROFILE_SPEC ?= scale-100k
PROFILE_CYCLES ?= 10
PROFILE_SIMWORKERS ?= 1
profile:
	$(GO) run ./cmd/slicebench run $(PROFILE_SPEC) -cycles $(PROFILE_CYCLES) \
		-simworkers $(PROFILE_SIMWORKERS) -cpuprofile cpu.prof -memprofile mem.prof \
		-format csv
	$(GO) tool pprof -top -nodecount=20 cpu.prof

# The million-node memory gate: run the scale-1m family at a reduced
# cycle count — enough to build the 1M-slot arena, run the parallel
# rounds and churn, not enough to wait for convergence — under a hard
# GOMEMLIMIT ceiling, and print each engine's audited memory budget
# (-memstats: arena/state/staging split and bytes/node). A per-node
# regression that slipped past the unit tests (a stray map, a pointer
# field, an unpooled buffer) either blows the bytes/node line or drives
# the runtime into the memory limit; both fail loudly here rather than
# silently on a researcher's machine.
scale-smoke:
	GOMEMLIMIT=6GiB $(GO) run ./cmd/slicebench run scale-1m -cycles 2 \
		-simworkers 4 -memstats -format csv

# Load-test the query plane: materialize the serving scenario family as
# real 1k-node clusters, hammer their HTTP endpoints with concurrent
# clients, and record qps / p50 / p99 / staleness bounds. Deliberately
# a separate artifact from BENCH_summary.json: serving latency is load-
# generator noise as far as the engine-throughput gate is concerned.
serve-bench:
	$(GO) run ./cmd/slicebench serve-bench -scenario serving \
		-out BENCH_serving.json
	@echo "wrote BENCH_serving.json (query-plane load benchmark)"

# The observability smoke: stand a served, instrumented cluster up
# end-to-end and scrape it — /metrics must parse as valid Prometheus
# text format and carry every golden live-plane family, /debug/trace
# must dump recorded events (TestMetricsEndToEnd) — then run a live
# scenario under tracing and keep the protocol trace dump as a build
# artifact (TRACE_sample.json: every view exchange, swap and boundary
# crossing of the run, scrapeable offline with jq).
obs-smoke:
	$(GO) test -count=1 -run 'TestMetricsEndToEnd|TestMetricNames' .
	$(GO) run ./cmd/slicebench trace livecluster -out TRACE_sample.json
	@echo "wrote TRACE_sample.json (protocol trace artifact)"

# The chaos gate: run the adversarial scenario families (drift,
# byzantine, partition/heal, message chaos) at scale 0.1 on BOTH
# backends and keep the results as BENCH_chaos.json, then enforce the
# recovery contract under the race detector — disorder must re-converge
# within a stated cycle budget after a partition heals, and top-slice
# pollution must stay under its bound at a 10% liar fraction
# (TestChaosRecoveryGates pins the exact numbers).
chaos-smoke:
	$(GO) run ./cmd/slicebench sweep -family chaos -scale 0.1 -workers 2 \
		-out BENCH_chaos_sim.json -quiet
	$(GO) run ./cmd/slicebench sweep -family chaos -scale 0.1 -backend live \
		-workers 2 -out BENCH_chaos_live.json -quiet
	$(GO) run ./cmd/slicebench summarize BENCH_chaos_sim.json BENCH_chaos_live.json \
		-out BENCH_chaos.json
	@echo "wrote BENCH_chaos.json (adversarial-family sweep, both backends)"
	$(GO) test -race -count=1 -run 'TestChaosRecoveryGates|TestPartitionHealDeterministic' \
		./internal/scenario ./internal/runtime

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

ci: lint build test test-serial test-hot bench bench-json bench-compare scale-smoke serve-bench obs-smoke chaos-smoke
