# Targets mirror .github/workflows/ci.yml exactly: `make ci` locally is
# the same bar the PR gate applies.

GO ?= go

.PHONY: all build test bench lint ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One iteration per benchmark: a smoke pass that proves they still run.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

ci: lint build test bench
