package slicing

// ---------------------------------------------------------------------
// Domain facade: identities, attributes, slices, partitions.
//
// The vocabulary of the paper's §3 model, shared by every layer: nodes
// (ID, Attr, Member), the normalized rank domain (0,1], and its
// partition into ordered slices. Everything else in this package —
// simulation, live runtime, scenarios, serving — is expressed in these
// types. Sibling facade sections live one per file: simulate.go (the
// cycle model), live.go (the runtime), scenarios.go (the declarative
// catalog), serve.go (the query plane), options.go (functional
// options), analytic.go (closed-form results).
// ---------------------------------------------------------------------

import (
	"github.com/gossipkit/slicing/internal/core"
	"github.com/gossipkit/slicing/internal/metrics"
	"github.com/gossipkit/slicing/internal/view"
)

// Domain types.
type (
	// ID uniquely identifies a node.
	ID = core.ID
	// Attr is a node's attribute value (the capability the network is
	// sliced by).
	Attr = core.Attr
	// Member pairs a node identity with its attribute.
	Member = core.Member
	// Slice is a half-open interval (Low, High] of the normalized rank
	// domain.
	Slice = core.Slice
	// Partition is an ordered set of adjacent slices covering (0,1].
	Partition = core.Partition
	// ViewEntry is one row of a gossip view (used for bootstrapping live
	// nodes).
	ViewEntry = view.Entry
)

// AgePlaceholder marks a bootstrap ViewEntry as identity-only: a contact
// address whose attribute and rank coordinate are not yet known. The
// protocols gossip with placeholders but never sample them.
const AgePlaceholder = view.AgeUnknown

// EqualSlices returns a partition of k equally sized slices.
func EqualSlices(k int) (Partition, error) { return core.Equal(k) }

// CustomSlices builds a partition from interior boundaries; for example
// CustomSlices(0.8) defines the bottom-80% and top-20% slices.
func CustomSlices(bounds ...float64) (Partition, error) { return core.NewPartition(bounds...) }

// Ranks returns every member's 1-based attribute rank (ties broken by
// identifier).
func Ranks(members []Member) map[ID]int { return core.Ranks(members) }

// Series types recorded by simulations.
type (
	// Series is a named time series (cycle, value).
	Series = metrics.Series
	// NodeState is a per-node measurement snapshot.
	NodeState = metrics.NodeState
)

// SDM computes the slice disorder measure of a population snapshot.
func SDM(states []NodeState, part Partition) float64 { return metrics.SDM(states, part) }

// GDM computes the global disorder measure of a population snapshot.
func GDM(states []NodeState) float64 { return metrics.GDM(states) }
