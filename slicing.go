package slicing

import (
	"time"

	"github.com/gossipkit/slicing/internal/churn"
	"github.com/gossipkit/slicing/internal/core"
	"github.com/gossipkit/slicing/internal/dist"
	"github.com/gossipkit/slicing/internal/metrics"
	"github.com/gossipkit/slicing/internal/ordering"
	"github.com/gossipkit/slicing/internal/ranking"
	"github.com/gossipkit/slicing/internal/runtime"
	"github.com/gossipkit/slicing/internal/scenario"
	"github.com/gossipkit/slicing/internal/sim"
	"github.com/gossipkit/slicing/internal/stats"
	"github.com/gossipkit/slicing/internal/transport"
	"github.com/gossipkit/slicing/internal/transport/tcp"
	"github.com/gossipkit/slicing/internal/view"
)

// Domain types.
type (
	// ID uniquely identifies a node.
	ID = core.ID
	// Attr is a node's attribute value (the capability the network is
	// sliced by).
	Attr = core.Attr
	// Member pairs a node identity with its attribute.
	Member = core.Member
	// Slice is a half-open interval (Low, High] of the normalized rank
	// domain.
	Slice = core.Slice
	// Partition is an ordered set of adjacent slices covering (0,1].
	Partition = core.Partition
	// ViewEntry is one row of a gossip view (used for bootstrapping live
	// nodes).
	ViewEntry = view.Entry
)

// AgePlaceholder marks a bootstrap ViewEntry as identity-only: a contact
// address whose attribute and rank coordinate are not yet known. The
// protocols gossip with placeholders but never sample them.
const AgePlaceholder = view.AgeUnknown

// EqualSlices returns a partition of k equally sized slices.
func EqualSlices(k int) (Partition, error) { return core.Equal(k) }

// CustomSlices builds a partition from interior boundaries; for example
// CustomSlices(0.8) defines the bottom-80% and top-20% slices.
func CustomSlices(bounds ...float64) (Partition, error) { return core.NewPartition(bounds...) }

// Ranks returns every member's 1-based attribute rank (ties broken by
// identifier).
func Ranks(members []Member) map[ID]int { return core.Ranks(members) }

// Simulation API (the paper's cycle model).
type (
	// SimConfig parameterizes a simulation; see the field docs.
	SimConfig = sim.Config
	// SimResult carries the recorded series of a run.
	SimResult = sim.Result
	// Simulation is a stepwise-controllable simulation engine.
	Simulation = sim.Engine
	// MessageCounts tallies delivered messages by type.
	MessageCounts = sim.MessageCounts
)

// Protocol kinds for SimConfig.Protocol.
const (
	// Ordering simulates JK / mod-JK (§4 of the paper).
	Ordering = sim.Ordering
	// Ranking simulates the rank-estimation protocol (§5).
	Ranking = sim.Ranking
)

// Membership kinds for SimConfig.Membership.
const (
	// CyclonViews is the Cyclon variant of §4.3.2 (default).
	CyclonViews = sim.CyclonViews
	// NewscastViews is the Newscast-like substrate.
	NewscastViews = sim.NewscastViews
	// UniformOracle re-draws views uniformly at random every cycle.
	UniformOracle = sim.UniformOracle
)

// Estimator kinds for SimConfig.Estimator.
const (
	// CounterEstimator is the unbounded ℓ/g counter (Fig. 5).
	CounterEstimator = sim.CounterEstimator
	// WindowEstimator is the sliding-window variant (§5.3.4).
	WindowEstimator = sim.WindowEstimator
)

// Partner-selection policies for SimConfig.Policy.
const (
	// JK picks a uniformly random misplaced neighbor.
	JK = ordering.SelectRandomMisplaced
	// ModJK picks the misplaced neighbor with the maximal local
	// disorder gain (the paper's contribution).
	ModJK = ordering.SelectMaxGain
	// RandomPartner picks any random neighbor (ablation baseline).
	RandomPartner = ordering.SelectRandom
)

// Attribute distributions for SimConfig.AttrDist. Every concrete source
// also implements AttrDistribution, exposing the analytic CDF and
// quantile function of its law: the true attribute threshold of a slice
// boundary b is Quantile(b), and the asymptotic normalized rank of a
// node with attribute x is CDF(x).
type (
	// AttrSource draws attribute values.
	AttrSource = dist.Source
	// AttrDistribution extends AttrSource with analytic CDF and
	// Quantile methods (all sources below implement it).
	AttrDistribution = dist.Distribution
	// UniformDist draws uniformly from [Lo, Hi).
	UniformDist = dist.Uniform
	// ParetoDist draws from a heavy-tailed Pareto distribution.
	ParetoDist = dist.Pareto
	// ExponentialDist draws exponentially distributed values.
	ExponentialDist = dist.Exponential
	// NormalDist draws normally distributed values.
	NormalDist = dist.Normal
	// ZipfDist draws ranks from the finite Zipf law on {1..N}.
	ZipfDist = dist.Zipf
	// LogNormalDist draws values whose logarithm is normal.
	LogNormalDist = dist.LogNormal
	// MixtureDist draws from a weighted mixture of component laws
	// (multi-modal populations).
	MixtureDist = dist.Mixture
	// MixtureComponent pairs a mixture component with its weight.
	MixtureComponent = dist.Weighted
	// EmpiricalDist replays a histogram-backed measured profile.
	EmpiricalDist = dist.Empirical
)

// NewEmpiricalDist bins raw samples (e.g. a bandwidth census) into an
// EmpiricalDist with the given number of equal-width bins.
func NewEmpiricalDist(samples []float64, bins int) (EmpiricalDist, error) {
	return dist.NewEmpirical(samples, bins)
}

// Churn models for SimConfig.Schedule / SimConfig.Pattern.
type (
	// ChurnSchedule decides when and how many nodes churn.
	ChurnSchedule = churn.Schedule
	// ChurnPattern decides which nodes leave and what joiners bring.
	ChurnPattern = churn.Pattern
	// NoChurn is the static system.
	NoChurn = churn.None
	// BurstChurn churns every cycle until a cutoff (Fig. 6(c)).
	BurstChurn = churn.Burst
	// PeriodicChurn churns every k-th cycle (Fig. 6(d)).
	PeriodicChurn = churn.Periodic
	// CorrelatedChurn removes the lowest-attribute nodes and admits
	// higher-attribute joiners (§5.3.3).
	CorrelatedChurn = churn.Correlated
	// UniformChurn removes random nodes and admits joiners from the
	// initial distribution.
	UniformChurn = churn.Uniform
)

// Series types recorded by simulations.
type (
	// Series is a named time series (cycle, value).
	Series = metrics.Series
	// NodeState is a per-node measurement snapshot.
	NodeState = metrics.NodeState
)

// SDM computes the slice disorder measure of a population snapshot.
func SDM(states []NodeState, part Partition) float64 { return metrics.SDM(states, part) }

// GDM computes the global disorder measure of a population snapshot.
func GDM(states []NodeState) float64 { return metrics.GDM(states) }

// Simulate runs cfg for the given number of cycles and returns the
// recorded series.
func Simulate(cfg SimConfig, cycles int) (*SimResult, error) { return sim.Run(cfg, cycles) }

// NewSimulation builds a stepwise-controllable engine.
func NewSimulation(cfg SimConfig) (*Simulation, error) { return sim.New(cfg) }

// Scenario catalog: the declarative layer behind cmd/slicebench. A
// Scenario is a named family of Specs — one per curve of a paper figure
// or extension workload — and a Spec is a JSON-serializable description
// of one run that translates into a SimConfig via its Config method.
type (
	// Scenario is a named family of runnable specs.
	Scenario = scenario.Scenario
	// ScenarioSpec declares one run as plain data.
	ScenarioSpec = scenario.Spec
	// ScenarioGrid declares a sweep (scenarios × seed replicas × scale).
	ScenarioGrid = scenario.Grid
	// ScenarioRunner fans grid runs across a worker pool.
	ScenarioRunner = scenario.Runner
	// ScenarioRunResult is one run's summary (and optional SDM series).
	ScenarioRunResult = scenario.RunResult
)

// Scenarios returns the built-in scenario catalog: the paper's figure
// families plus the extension workloads.
func Scenarios() []Scenario { return scenario.All() }

// ScenarioNames lists the catalog in presentation order.
func ScenarioNames() []string { return scenario.Names() }

// LookupScenario finds a catalog scenario by name (e.g. "fig6-burst").
func LookupScenario(name string) (Scenario, error) { return scenario.Lookup(name) }

// Execution backends: one spec, two engines. A ScenarioBackend executes
// a ScenarioSpec either on the cycle-driven simulator (the paper's
// PeerSim model) or on the live runtime (real protocol participants on
// a sharded scheduler, churn as actual joins and crashes, transport
// latency/loss injection from the spec's live block). Both return the
// same result shape, so sim and live disorder trajectories are directly
// comparable.
type (
	// ScenarioBackend executes specs on one engine.
	ScenarioBackend = scenario.Backend
	// ScenarioLiveSpec is a spec's live-backend tuning block.
	ScenarioLiveSpec = scenario.LiveSpec
)

// Backend names accepted by ScenarioBackendByName (and the slicebench
// -backend flag).
const (
	// BackendSim names the cycle-driven simulator backend.
	BackendSim = scenario.BackendSim
	// BackendLive names the live-runtime backend.
	BackendLive = scenario.BackendLive
)

// SimScenarioBackend returns the simulator backend.
func SimScenarioBackend() ScenarioBackend { return scenario.SimBackend{} }

// LiveScenarioBackend returns the live-runtime backend.
func LiveScenarioBackend() ScenarioBackend { return scenario.LiveBackend{} }

// ScenarioBackendByName resolves "sim" or "live".
func ScenarioBackendByName(name string) (ScenarioBackend, error) {
	return scenario.BackendByName(name)
}

// Live runtime API.
type (
	// Node is a live protocol participant.
	Node = runtime.Node
	// NodeConfig parameterizes a live node.
	NodeConfig = runtime.NodeConfig
	// NodeStatus is a point-in-time node snapshot.
	NodeStatus = runtime.Status
	// Cluster is a process-local set of live nodes, multiplexed onto a
	// sharded scheduler (a fixed worker pool draining per-shard timer
	// wheels) so one process sustains 10,000+ gossiping nodes.
	Cluster = runtime.Cluster
	// ClusterConfig parameterizes a cluster.
	ClusterConfig = runtime.ClusterConfig
	// ClusterMessageCounts tallies a cluster's internal-network traffic.
	ClusterMessageCounts = runtime.MessageCounts
	// Estimator accumulates rank observations for a ranking node.
	Estimator = ranking.Estimator
	// LiveClock abstracts time for a cluster's scheduler.
	LiveClock = runtime.Clock
	// VirtualClock is a manually advanced clock: handing one to a
	// cluster puts it in driven mode, where time moves only through
	// Cluster.Advance — the same concurrent code paths as wall-clock
	// operation, with no wall time spent waiting for gossip periods.
	VirtualClock = runtime.VirtualClock
)

// NewVirtualClock returns a virtual clock for driven clusters.
func NewVirtualClock() *VirtualClock { return runtime.NewVirtualClock() }

// Jitter configuration for NodeConfig/ClusterConfig.JitterFrac.
const (
	// DefaultJitterFrac is the period desynchronization used when
	// JitterFrac is left zero.
	DefaultJitterFrac = runtime.DefaultJitterFrac
	// JitterNone requests strictly periodic gossip (a zero JitterFrac
	// means "default", so jitter-free operation needs the explicit
	// sentinel).
	JitterNone = runtime.JitterNone
)

// Live protocol and membership kinds (runtime flavors of the simulation
// constants).
const (
	// LiveOrdering runs JK / mod-JK on a live node.
	LiveOrdering = runtime.Ordering
	// LiveRanking runs the ranking protocol on a live node.
	LiveRanking = runtime.Ranking
	// LiveCyclon selects the Cyclon-variant substrate.
	LiveCyclon = runtime.CyclonViews
	// LiveNewscast selects the Newscast-like substrate.
	LiveNewscast = runtime.NewscastViews
)

// NewNode builds a live node; call Start to begin gossiping.
func NewNode(cfg NodeConfig) (*Node, error) { return runtime.NewNode(cfg) }

// NewCluster builds a process-local cluster of live nodes.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return runtime.NewCluster(cfg) }

// NewCounterEstimator returns the unbounded ℓ/g estimator of Fig. 5.
func NewCounterEstimator() Estimator { return ranking.NewCounter() }

// NewWindowEstimator returns the sliding-window estimator of §5.3.4.
func NewWindowEstimator(size int) (Estimator, error) { return ranking.NewWindow(size) }

// Transports.
type (
	// Transport routes protocol messages between live nodes.
	Transport = transport.Transport
	// InMemTransportOptions configures the in-memory transport.
	InMemTransportOptions = transport.InMemOptions
	// TCPTransportOptions configures the TCP transport.
	TCPTransportOptions = tcp.Options
	// TCPTransport is the TCP-backed transport.
	TCPTransport = tcp.Transport
)

// NewInMemTransport builds a process-local transport with optional
// latency and loss injection.
func NewInMemTransport(opts InMemTransportOptions) Transport {
	return transport.NewInMem(opts)
}

// NewTCPTransport starts a TCP transport listening per opts.
func NewTCPTransport(opts TCPTransportOptions) (*TCPTransport, error) {
	return tcp.New(opts)
}

// Analytic results (Lemma 4.1 and Theorem 5.1).

// RequiredSamples returns how many attribute observations a ranking
// node at rank estimate pHat and distance d from the nearest slice
// boundary needs for a confidence-(1−alpha) slice assignment
// (Theorem 5.1).
func RequiredSamples(alpha, pHat, d float64) (int, error) {
	return stats.RequiredSamples(alpha, pHat, d)
}

// SliceDeviationBound returns the Chernoff bound of Lemma 4.1 on the
// probability that a slice of width p holds a population deviating from
// its mean by a factor ≥ beta.
func SliceDeviationBound(n int, p, beta float64) (float64, error) {
	return stats.SliceDeviationBound(n, p, beta)
}

// MinSliceWidth returns the smallest slice width with a (beta, eps)
// population guarantee at system size n (Lemma 4.1).
func MinSliceWidth(n int, beta, eps float64) (float64, error) {
	return stats.MinSliceWidth(n, beta, eps)
}

// DefaultPeriod is a reasonable live gossip period for LAN deployments.
const DefaultPeriod = 500 * time.Millisecond
